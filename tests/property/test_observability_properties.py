"""Property tests for the observability invariants.

Three invariants must hold for *any* instrumented execution, including
ones that end in typed errors, fault-injected models, and failing worker
payloads:

- **span balance** — every span that starts also finishes, exactly once,
  and no span is left open when the work unit returns;
- **parents outlive children** — a parent span finishes after all of its
  children (finish order is child-first), so the trace always forms a
  well-nested tree;
- **counter monotonicity** — registry counters never decrease, whatever
  sequence of operations (including worker merges) runs.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import observability as obs
from repro.dsl import assembly_to_dict
from repro.errors import ReproError
from repro.observability import InMemorySink, MetricsRegistry, Tracer
from repro.robustness import OPERATOR_NAMES, ModelMutator, default_target
from repro.robustness.harness import run_fuzz_case
from repro.runtime import EvaluationBudget, RobustEvaluator
from repro.scenarios import local_assembly

BASE = assembly_to_dict(local_assembly())
SERVICE, ACTUALS = default_target(local_assembly())


def _assert_balanced(sink: InMemorySink, tracer: Tracer) -> None:
    """Span balance + well-nestedness over a finished tracer."""
    assert sink.open_spans == 0
    assert tracer.current() is None
    finish_position = {s.span_id: i for i, s in enumerate(tracer.finished)}
    assert len(finish_position) == len(tracer.finished)  # one end per start
    for span in tracer.finished:
        assert span.status in ("ok", "error")
        assert span.wall >= 0.0 and math.isfinite(span.wall)
        if span.parent_id is not None and span.parent_id in finish_position:
            # children finish before (= are outlived by) their parents
            assert finish_position[span.span_id] < finish_position[span.parent_id]


# -- synthetic span programs ------------------------------------------------


@st.composite
def span_programs(draw):
    """A random tree of nested spans, some of which raise."""
    return draw(
        st.recursive(
            st.booleans(),  # leaf: raise here?
            lambda children: st.lists(children, min_size=1, max_size=4),
            max_leaves=12,
        )
    )


def _run_program(tracer: Tracer, node, depth=0) -> None:
    if isinstance(node, bool):
        with tracer.span(f"leaf.{depth}"):
            if node:
                raise ValueError("injected leaf failure")
        return
    with tracer.span(f"node.{depth}"):
        for child in node:
            try:
                _run_program(tracer, child, depth + 1)
            except ValueError:
                pass  # swallowed mid-tree: outer spans must still close


class TestSpanBalance:
    @given(program=span_programs())
    @settings(max_examples=60, deadline=None)
    def test_any_span_tree_is_balanced(self, program):
        sink = InMemorySink()
        tracer = Tracer(hooks=[sink])
        try:
            _run_program(tracer, program)
        except ValueError:
            pass  # a root leaf may raise out of the whole program
        _assert_balanced(sink, tracer)

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        operator=st.sampled_from(OPERATOR_NAMES),
    )
    @settings(max_examples=25, deadline=None)
    def test_balanced_under_fault_injection(self, seed, operator):
        """Mutated models exercise every degradation/error path; the spans
        those paths open must all close regardless of outcome."""
        mutation = ModelMutator(BASE, seed=seed, operators=(operator,)).mutate()
        obs.reset()
        sink = InMemorySink()
        obs.enable(hooks=[sink])
        try:
            case = run_fuzz_case(
                0, mutation, service=SERVICE, actuals=ACTUALS,
                seed=seed, trials=200, deadline=5.0,
            )
            assert case.status  # classification always lands on a bucket
            _assert_balanced(sink, obs.tracer())
        finally:
            obs.reset()

    @given(seed=st.integers(min_value=0, max_value=10**5))
    @settings(max_examples=15, deadline=None)
    def test_balanced_when_evaluation_raises(self, seed):
        """A typed refusal (budget trip, bad model) must not leak spans."""
        mutation = ModelMutator(BASE, seed=seed).mutate()
        obs.reset()
        sink = InMemorySink()
        obs.enable(hooks=[sink])
        try:
            try:
                assembly = mutation.build()
                RobustEvaluator(
                    assembly,
                    budget=EvaluationBudget(deadline=0.0),  # expired at start
                    trials=100, seed=seed,
                ).evaluate(SERVICE, **ACTUALS)
            except ReproError:
                pass
            _assert_balanced(sink, obs.tracer())
        finally:
            obs.reset()


class TestWorkerPayloadInvariants:
    @given(seed=st.integers(min_value=0, max_value=10**5))
    @settings(max_examples=10, deadline=None)
    def test_crashing_worker_payload_ships_balanced_spans(self, seed):
        """A fuzz block full of corrupt models (worker-side failures) still
        ships a balanced span set and monotone counters."""
        from repro.engine.parallel import fuzz_block, unpack_worker_payload

        mutations = list(
            enumerate(ModelMutator(BASE, seed=seed).generate(3))
        )
        obs.reset()  # worker processes start with observability disabled
        wrapped = fuzz_block({
            "cases": mutations,
            "service": SERVICE,
            "actuals": ACTUALS,
            "seed": seed,
            "trials": 100,
            "deadline": 5.0,
            "observe": True,
            "dispatched_at": 0.0,
        })
        assert isinstance(wrapped, dict)
        for record in wrapped["spans"]:
            assert record["status"] in ("ok", "error")
        for value in wrapped["metrics"]["counters"].values():
            assert value >= 0

        obs.enable()
        sink = InMemorySink()
        obs.enable(hooks=[sink])
        try:
            before = dict(obs.registry().snapshot()["counters"])
            cases = unpack_worker_payload(wrapped)
            assert len(cases) == 3
            after = obs.registry().snapshot()["counters"]
            for name, value in before.items():
                assert after.get(name, 0) >= value  # merge never decreases
            _assert_balanced(sink, obs.tracer())
        finally:
            obs.reset()


class TestCounterMonotonicity:
    @given(
        amounts=st.lists(
            st.integers(min_value=0, max_value=1_000), max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_counter_equals_sum_and_never_decreases(self, amounts):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        seen = 0
        for amount in amounts:
            counter.inc(amount)
            assert counter.value >= seen
            seen = counter.value
        assert counter.value == sum(amounts)

    @given(
        worker_counts=st.lists(
            st.dictionaries(
                st.sampled_from(["cache.plan.hits", "solver.plans",
                                 "robust.degraded"]),
                st.integers(min_value=0, max_value=100),
                max_size=3,
            ),
            max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_stream_is_monotone(self, worker_counts):
        parent = MetricsRegistry()
        running: dict[str, int] = {}
        for counters in worker_counts:
            parent.merge({"counters": counters})
            snap = parent.snapshot()["counters"]
            for name, value in running.items():
                assert snap.get(name, 0) >= value
            running = dict(snap)
        expected: dict[str, int] = {}
        for counters in worker_counts:
            for name, value in counters.items():
                expected[name] = expected.get(name, 0) + value
        assert parent.snapshot()["counters"] == {
            k: v for k, v in expected.items()
        }
