"""Property tests: DSL round-trips and branching-flow agreement over
randomized assemblies.

Complements ``test_evaluator_properties`` (sequential flows with a by-hand
oracle) with two broader invariants:

- serializing any generated assembly through the ``repro/1`` schema and
  loading it back preserves the predicted unreliability exactly;
- on *branching* flows (no oracle), the numeric and symbolic evaluators
  and the Monte Carlo simulator still agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReliabilityEvaluator, SymbolicEvaluator
from repro.dsl import dump_assembly, load_assembly
from repro.model import (
    AND,
    OR,
    AnalyticInterface,
    Assembly,
    CompositeService,
    FlowBuilder,
    ServiceRequest,
    SimpleService,
    perfect_connector,
)
from repro.symbolic import Constant

probabilities = st.floats(min_value=0.0, max_value=0.4)
branch = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def branching_assemblies(draw):
    """app with a diamond flow:

        Start -q-> left -> join -> End
        Start -(1-q)-> right -r-> join ; right -(1-r)-> End

    Each state holds 1-2 requests to fresh constant-unreliability
    providers; left/join may use OR and sharing.
    """
    assembly = Assembly("random-branching")
    q = draw(branch)
    r = draw(branch)
    provider_index = 0

    def make_state_requests(n_requests, shared):
        nonlocal provider_index
        requests = []
        if shared:
            slot = f"p{provider_index}"
            provider_index += 1
            assembly.add_service(
                SimpleService(slot, AnalyticInterface(),
                              Constant(draw(probabilities)))
            )
            assembly.add_service(perfect_connector(f"loc_{slot}"))
        for _ in range(n_requests):
            if not shared:
                slot = f"p{provider_index}"
                provider_index += 1
                assembly.add_service(
                    SimpleService(slot, AnalyticInterface(),
                                  Constant(draw(probabilities)))
                )
                assembly.add_service(perfect_connector(f"loc_{slot}"))
            requests.append(
                ServiceRequest(
                    slot, actuals={},
                    internal_failure=Constant(draw(probabilities)),
                    masking=Constant(draw(st.floats(0.0, 0.5))),
                )
            )
        return requests

    builder = FlowBuilder(formals=())
    for name in ("left", "right", "join"):
        n_requests = draw(st.integers(1, 2))
        shared = n_requests == 2 and draw(st.booleans())
        completion = OR if (n_requests == 2 and draw(st.booleans())) else AND
        builder.state(
            name, make_state_requests(n_requests, shared),
            completion=completion, shared=shared,
        )
    builder.transition("Start", "left", q)
    builder.transition("Start", "right", 1.0 - q)
    builder.transition("left", "join", 1)
    builder.transition("right", "join", r)
    builder.transition("right", "End", 1.0 - r)
    builder.transition("join", "End", 1)
    app = CompositeService("app", AnalyticInterface(), builder.build())
    assembly.add_service(app)
    for i in range(provider_index):
        assembly.bind("app", f"p{i}", f"p{i}", connector=f"loc_p{i}")
    return assembly


class TestDslRoundTrip:
    @given(branching_assemblies())
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_pfail_exactly(self, assembly):
        original = ReliabilityEvaluator(assembly).pfail("app")
        rebuilt = load_assembly(dump_assembly(assembly))
        assert ReliabilityEvaluator(rebuilt).pfail("app") == original

    @given(branching_assemblies())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_is_stable(self, assembly):
        """Serialize twice: the texts must be identical (canonical form)."""
        once = dump_assembly(assembly)
        twice = dump_assembly(load_assembly(once))
        assert once == twice


class TestBranchingAgreement:
    @given(branching_assemblies())
    @settings(max_examples=100, deadline=None)
    def test_numeric_matches_symbolic(self, assembly):
        numeric = ReliabilityEvaluator(assembly).pfail("app")
        expression = SymbolicEvaluator(assembly).pfail_expression("app")
        assert float(expression.evaluate({})) == pytest.approx(numeric, abs=1e-10)

    @given(branching_assemblies())
    @settings(max_examples=100, deadline=None)
    def test_pfail_is_probability(self, assembly):
        assert 0.0 <= ReliabilityEvaluator(assembly).pfail("app") <= 1.0

    @given(branching_assemblies())
    @settings(max_examples=10, deadline=None)
    def test_simulator_consistent(self, assembly):
        from repro.simulation import MonteCarloSimulator

        analytic = ReliabilityEvaluator(assembly).pfail("app")
        result = MonteCarloSimulator(assembly, seed=3).estimate_pfail("app", 4000)
        assert result.consistent_with(analytic, z=5.0)
