"""Property tests for the sharing/completion algebra (eqs. 4-13).

The paper's analytic findings, verified over randomized request sets:

- the general Poisson-binomial engine reproduces every printed closed form;
- **AND is sharing-insensitive** (eq. 11 == eq. 6) — always;
- **OR sharing never helps** (eq. 12 >= eq. 7) — always, with strictness
  exactly when redundancy had something to lose;
- monotonicity: any increase of any internal/external failure probability
  never decreases the state failure probability;
- k-of-n interpolates monotonically between OR and AND.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    and_no_sharing,
    and_sharing,
    or_no_sharing,
    or_sharing,
    state_failure_probability,
)
from repro.model import AND, OR, KOfNCompletion

probabilities = st.floats(min_value=0.0, max_value=1.0)
open_probabilities = st.floats(min_value=1e-6, max_value=1.0 - 1e-6)


@st.composite
def request_sets(draw, min_size=1, max_size=6, strict=False):
    source = open_probabilities if strict else probabilities
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    internal = [draw(source) for _ in range(n)]
    external = [draw(source) for _ in range(n)]
    return internal, external


class TestEngineReproducesClosedForms:
    @given(request_sets())
    @settings(max_examples=300)
    def test_and_no_sharing(self, requests):
        internal, external = requests
        assert state_failure_probability(AND, False, internal, external) == (
            pytest.approx(and_no_sharing(internal, external), abs=1e-12)
        )

    @given(request_sets())
    @settings(max_examples=300)
    def test_or_no_sharing(self, requests):
        internal, external = requests
        assert state_failure_probability(OR, False, internal, external) == (
            pytest.approx(or_no_sharing(internal, external), abs=1e-12)
        )

    @given(request_sets(min_size=2))
    @settings(max_examples=300)
    def test_and_sharing(self, requests):
        internal, external = requests
        assert state_failure_probability(AND, True, internal, external) == (
            pytest.approx(and_sharing(internal, external), abs=1e-12)
        )

    @given(request_sets(min_size=2))
    @settings(max_examples=300)
    def test_or_sharing(self, requests):
        internal, external = requests
        assert state_failure_probability(OR, True, internal, external) == (
            pytest.approx(or_sharing(internal, external), abs=1e-12)
        )


class TestPaperIdentities:
    @given(request_sets())
    @settings(max_examples=500)
    def test_and_insensitive_to_sharing(self, requests):
        """Equation (11) == equation (6), for every request set."""
        internal, external = requests
        assert and_sharing(internal, external) == pytest.approx(
            and_no_sharing(internal, external), abs=1e-12
        )

    @given(request_sets())
    @settings(max_examples=500)
    def test_or_sharing_never_helps(self, requests):
        """Equation (12) >= equation (7), for every request set."""
        internal, external = requests
        assert or_sharing(internal, external) >= (
            or_no_sharing(internal, external) - 1e-12
        )

    @given(request_sets(min_size=2, strict=True))
    @settings(max_examples=300)
    def test_or_sharing_strictly_worse_in_the_interior(self, requests):
        """With every probability strictly inside (0, 1) and at least two
        requests, sharing strictly destroys redundancy value."""
        internal, external = requests
        assert or_sharing(internal, external) > or_no_sharing(internal, external)

    @given(request_sets())
    @settings(max_examples=200)
    def test_single_request_state_models_coincide(self, requests):
        """With n = 1 there is nothing to share and nothing to vote on:
        all four combinations agree."""
        internal, external = requests[0][:1], requests[1][:1]
        values = {
            and_no_sharing(internal, external),
            or_no_sharing(internal, external),
        }
        reference = values.pop()
        assert all(v == pytest.approx(reference, abs=1e-12) for v in values)


class TestMonotonicity:
    @given(request_sets(min_size=2), st.integers(0, 5), st.floats(0.0, 1.0),
           st.booleans(), st.booleans())
    @settings(max_examples=400)
    def test_raising_any_probability_never_helps(
        self, requests, index, bump_to, shared, use_or
    ):
        internal, external = requests
        index = index % len(internal)
        completion = OR if use_or else AND
        before = state_failure_probability(completion, shared, internal, external)
        bumped_internal = list(internal)
        bumped_internal[index] = max(internal[index], bump_to)
        after = state_failure_probability(
            completion, shared, bumped_internal, external
        )
        assert after >= before - 1e-12

        bumped_external = list(external)
        bumped_external[index] = max(external[index], bump_to)
        after_ext = state_failure_probability(
            completion, shared, internal, bumped_external
        )
        assert after_ext >= before - 1e-12


class TestKOfN:
    @given(request_sets(min_size=3, max_size=6), st.booleans())
    @settings(max_examples=300)
    def test_monotone_in_k(self, requests, shared):
        """Requiring more successes can only increase failure probability;
        the extremes are OR (k=1) and AND (k=n)."""
        internal, external = requests
        n = len(internal)
        values = [
            state_failure_probability(
                KOfNCompletion(k), shared, internal, external
            )
            for k in range(1, n + 1)
        ]
        for lower, higher in zip(values, values[1:]):
            assert higher >= lower - 1e-12
        assert values[0] == pytest.approx(
            state_failure_probability(OR, shared, internal, external), abs=1e-12
        )
        assert values[-1] == pytest.approx(
            state_failure_probability(AND, shared, internal, external), abs=1e-12
        )

    @given(request_sets(min_size=2, max_size=6))
    @settings(max_examples=200)
    def test_all_values_are_probabilities(self, requests):
        internal, external = requests
        n = len(internal)
        for shared in (False, True):
            for k in range(1, n + 1):
                value = state_failure_probability(
                    KOfNCompletion(k), shared, internal, external
                )
                assert 0.0 <= value <= 1.0
