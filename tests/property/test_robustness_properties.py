"""Property test for the robustness contract.

For *any* mutated assembly — any operator, any mutation seed — the
hardened path (:class:`~repro.runtime.RobustEvaluator` under an
:class:`~repro.runtime.EvaluationBudget`) must either return a
probability in ``[0, 1]`` or raise a typed
:class:`~repro.errors.ReproError`.  Nothing else is acceptable: no bare
exceptions, no NaN, no probabilities outside the unit interval.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import assembly_to_dict
from repro.errors import ReproError
from repro.robustness import OPERATOR_NAMES, ModelMutator, default_target
from repro.runtime import EvaluationBudget, RobustEvaluator
from repro.scenarios import local_assembly

# Built once: mutation works on the dict form, so the strategy only draws
# seeds and operator choices.
BASE = assembly_to_dict(local_assembly())
SERVICE, ACTUALS = default_target(local_assembly())


class TestMutationContract:
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        operator=st.sampled_from(OPERATOR_NAMES),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_mutation_yields_probability_or_typed_error(
        self, seed, operator
    ):
        mutator = ModelMutator(BASE, seed=seed, operators=(operator,))
        mutation = mutator.mutate()
        budget = EvaluationBudget(
            deadline=5.0, max_depth=64, max_sweeps=500, max_trials=2_000
        )
        try:
            assembly = mutation.build()
            result = RobustEvaluator(
                assembly, budget=budget, trials=500, seed=seed
            ).evaluate(SERVICE, **ACTUALS)
        except ReproError:
            return  # a typed refusal is a correct answer to a corrupt model
        assert isinstance(result.pfail, float)
        assert math.isfinite(result.pfail)
        assert 0.0 <= result.pfail <= 1.0

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_mutation_stream_is_deterministic_per_seed(self, seed):
        first = ModelMutator(BASE, seed=seed).mutate()
        second = ModelMutator(BASE, seed=seed).mutate()
        assert (first.operator, first.detail) == (
            second.operator, second.detail
        )
