"""Property tests for the expression engine.

Random expression trees over a bounded-value domain; key invariants:
simplification and serialization preserve semantics, substitution respects
composition, differentiation matches finite differences.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    Binary,
    Call,
    Constant,
    Expression,
    Parameter,
    simplify,
)

#: Parameter names used by generated trees.
NAMES = ("x", "y", "z")

#: Value domain kept in a range where all generated operations are finite
#: and well-conditioned.
values = st.floats(min_value=0.1, max_value=4.0)


def expressions(max_depth: int = 4) -> st.SearchStrategy[Expression]:
    """Strategy for random, numerically tame expression trees."""
    leaves = st.one_of(
        st.floats(min_value=0.1, max_value=4.0).map(Constant),
        st.sampled_from(NAMES).map(Parameter),
    )

    def extend(children):
        binary = st.builds(
            Binary,
            st.sampled_from(["+", "-", "*", "/"]),
            children,
            children,
        )
        call = st.builds(
            lambda name, arg: Call(name, (arg,)),
            st.sampled_from(["log", "log2", "exp", "sqrt"]),
            children,
        )
        return st.one_of(binary, call)

    return st.recursive(leaves, extend, max_leaves=2**max_depth)


def tame(value) -> bool:
    return np.all(np.isfinite(value)) and np.all(np.abs(value) < 1e12)


def subvalues_tame(expr: Expression, env) -> bool:
    """True when every sub-expression evaluates to a finite, moderately
    scaled value and no log sits on its clamp boundary — the domain on
    which simplification rewrites (e.g. ``log(exp(u)) -> u``,
    ``exp(log(u)) -> u``) are contractually semantics-preserving."""
    with np.errstate(all="ignore"):
        if not tame(expr.evaluate(env)):
            return False
        if isinstance(expr, Call) and expr.name in ("log", "log2"):
            argument = expr.args[0].evaluate(env)
            if not (np.all(np.isfinite(argument)) and np.all(argument > 1e-9)):
                return False
    return all(subvalues_tame(child, env) for child in expr.children())


@st.composite
def expression_and_env(draw):
    expr = draw(expressions())
    env = {name: draw(values) for name in NAMES}
    # discard pathologically scaled samples (overflow from exp chains,
    # division blow-ups) anywhere in the tree, not only at the root
    if not subvalues_tame(expr, env):
        raise_unsatisfied()
    return expr, env, expr.evaluate(env)


def raise_unsatisfied():
    from hypothesis import assume

    assume(False)


class TestSimplification:
    @given(expression_and_env())
    @settings(max_examples=200)
    def test_simplify_preserves_value(self, data):
        expr, env, expected = data
        simplified = simplify(expr)
        got = simplified.evaluate(env)
        assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @given(expression_and_env())
    @settings(max_examples=100)
    def test_simplify_is_idempotent(self, data):
        expr, _, _ = data
        once = simplify(expr)
        assert simplify(once) == once

    @given(expression_and_env())
    @settings(max_examples=100)
    def test_simplify_never_adds_parameters(self, data):
        expr, _, _ = data
        assert simplify(expr).free_parameters() <= expr.free_parameters()


class TestSerialization:
    @given(expressions())
    @settings(max_examples=200)
    def test_dict_round_trip_is_identity(self, expr):
        assert Expression.from_dict(expr.to_dict()) == expr

    @given(expression_and_env())
    @settings(max_examples=100)
    def test_str_reparse_preserves_value(self, data):
        from repro.symbolic import parse_expression

        expr, env, expected = data
        reparsed = parse_expression(str(expr))
        assert reparsed.evaluate(env) == pytest.approx(expected, rel=1e-12, abs=1e-12)


class TestSubstitution:
    @given(expression_and_env(), st.sampled_from(NAMES))
    @settings(max_examples=100)
    def test_substitute_then_evaluate_equals_evaluate_extended(self, data, name):
        """expr[name := c].evaluate(env) == expr.evaluate(env | {name: c})."""
        from hypothesis import assume

        expr, env, _ = data
        constant = 1.7
        substituted = expr.substitute({name: Constant(constant)})
        with np.errstate(all="ignore"):
            direct = expr.evaluate({**env, name: constant})
            indirect = substituted.evaluate(env)
        assume(tame(direct))
        assert indirect == pytest.approx(direct, rel=1e-12, abs=1e-12)

    @given(expression_and_env())
    @settings(max_examples=100)
    def test_identity_substitution_is_noop(self, data):
        expr, env, expected = data
        same = expr.substitute({n: Parameter(n) for n in NAMES})
        assert same.evaluate(env) == pytest.approx(expected, rel=0, abs=0)


class TestVectorization:
    @given(expression_and_env())
    @settings(max_examples=100)
    def test_array_evaluation_matches_pointwise(self, data):
        expr, env, _ = data
        grid = np.array([0.3, 1.1, 2.7])
        array_env = {**env, "x": grid}
        with np.errstate(all="ignore"):
            vectorized = expr.evaluate(array_env)
            for i, x in enumerate(grid):
                pointwise = expr.evaluate({**env, "x": float(x)})
                got = (
                    vectorized[i]
                    if isinstance(vectorized, np.ndarray)
                    else vectorized
                )
                if np.isnan(pointwise):
                    # e.g. sqrt(log(x)) off the sampled domain: both routes
                    # must agree that the point is undefined
                    assert np.isnan(got)
                else:
                    assert got == pytest.approx(pointwise, rel=1e-12, abs=1e-12)


class TestDifferentiation:
    @given(expression_and_env())
    @settings(max_examples=150)
    def test_derivative_matches_finite_difference(self, data):
        from hypothesis import assume

        expr, env, value = data
        assume("x" in expr.free_parameters())

        def clear_of_log_clamp(node, at_env) -> bool:
            """The library clamps log/log2 to 0 at non-positive arguments;
            derivative rules describe the unclamped function, so only test
            points where every log argument is safely positive."""
            if isinstance(node, Call) and node.name in ("log", "log2"):
                with np.errstate(all="ignore"):
                    argument = node.args[0].evaluate(at_env)
                if not (np.isfinite(argument) and argument > 0.05):
                    return False
            return all(clear_of_log_clamp(c, at_env) for c in node.children())

        probe = 2e-6 * max(abs(env["x"]), 1.0)
        assume(all(
            clear_of_log_clamp(expr, {**env, "x": env["x"] + delta})
            for delta in (-probe, 0.0, probe)
        ))
        try:
            with np.errstate(all="ignore"):
                # simplification inside differentiate constant-folds, which
                # may transiently divide by folded zeros
                derivative = expr.differentiate("x")
        except Exception:
            assume(False)
        x = env["x"]
        h = 1e-6 * max(abs(x), 1.0)
        with np.errstate(all="ignore"):
            f_plus = expr.evaluate({**env, "x": x + h})
            f_minus = expr.evaluate({**env, "x": x - h})
            f_plus_half = expr.evaluate({**env, "x": x + h / 2})
            f_minus_half = expr.evaluate({**env, "x": x - h / 2})
            symbolic = derivative.evaluate(env)
        assume(tame(f_plus) and tame(f_minus) and tame(symbolic))
        numeric = (f_plus - f_minus) / (2 * h)
        numeric_half = (f_plus_half - f_minus_half) / h
        assume(abs(numeric) < 1e8)
        # cancellation filter: the finite difference loses ~ulp(|f|)/h
        # absolute accuracy, so a huge function value with a tiny slope
        # (e.g. exp(exp(3)) + x) makes the probe meaningless noise —
        # only test where the rounding noise is well below the tolerance
        assume(
            max(abs(f_plus), abs(f_minus)) * 2.3e-16 / h
            <= 1e-5 * max(1.0, abs(numeric))
        )
        # Richardson consistency filter: the clamped log/sqrt boundaries
        # make some sample points non-smooth; only test where the two
        # step sizes agree (i.e. the function is locally differentiable).
        assume(
            abs(numeric - numeric_half)
            <= 1e-4 * max(1.0, abs(numeric))
        )
        assert symbolic == pytest.approx(numeric, rel=2e-3, abs=2e-3)
