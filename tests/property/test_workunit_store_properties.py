"""Property tests: journal replay is idempotent and truncation-safe.

The resume contract rests on two properties of the JSONL store:

1. **Replay is a pure fold** — loading the same journal any number of
   times yields the same state, and appending a replayed journal's own
   records again changes nothing (first ``done`` wins).
2. **Any prefix is a valid journal** — a process killed mid-append
   leaves at most one torn line, and truncating the file at *any* byte
   offset must replay every complete record before the cut.

Together they imply the user-facing property (exercised concretely at
the end): re-resuming a completed campaign is a strict no-op.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import local_assembly
from repro.workunits import load_state, run_campaign, sweep_campaign

UNIT_IDS = st.sampled_from(["u-alpha", "u-beta", "u-gamma", "u-delta"])

ATTEMPTS = st.fixed_dictionaries({
    "kind": st.just("attempt"),
    "unit": UNIT_IDS,
    "attempt": st.integers(min_value=1, max_value=5),
    "status": st.sampled_from(
        ["done", "failed", "timeout", "crashed", "corrupt"]
    ),
    "elapsed": st.floats(
        min_value=0.0, max_value=10.0, allow_nan=False
    ),
    "result": st.lists(
        st.floats(allow_nan=False, allow_infinity=False), max_size=3
    ),
})

QUARANTINES = st.fixed_dictionaries({
    "kind": st.just("quarantine"),
    "unit": UNIT_IDS,
    "attempts": st.integers(min_value=1, max_value=5),
    "error": st.text(max_size=20),
})

VALIDATIONS = st.fixed_dictionaries({
    "kind": st.just("validation"),
    "unit": UNIT_IDS,
    "match": st.booleans(),
})

HEADER = {
    "schema": "repro/workunits/1",
    "kind": "campaign",
    "campaign": "c" * 64,
    "campaign_kind": "sweep",
    "units": 4,
    "config": {},
}

RECORDS = st.lists(
    st.one_of(ATTEMPTS, QUARANTINES, VALIDATIONS), max_size=12
)


def write_journal(path, records):
    lines = [json.dumps(HEADER, sort_keys=True)]
    lines += [json.dumps(r, sort_keys=True) for r in records]
    path.write_text("\n".join(lines) + "\n")


@settings(max_examples=60, deadline=None)
@given(records=RECORDS)
def test_replay_is_deterministic_and_repeatable(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("store") / "s.jsonl"
    write_journal(path, records)
    first = load_state(path)
    second = load_state(path)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(records=RECORDS)
def test_replaying_appended_duplicates_changes_no_results(
    tmp_path_factory, records
):
    path = tmp_path_factory.mktemp("store") / "s.jsonl"
    write_journal(path, records)
    base = load_state(path)
    # append the whole record stream again: "done" results are sticky,
    # quarantine/validation sets are idempotent unions
    with path.open("a") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    doubled = load_state(path)
    assert doubled.results == base.results
    assert doubled.quarantined == base.quarantined
    assert doubled.validated == base.validated
    assert doubled.attempts == base.attempts


@settings(max_examples=60, deadline=None)
@given(records=RECORDS, data=st.data())
def test_any_byte_truncation_replays_the_complete_prefix(
    tmp_path_factory, records, data
):
    tmp = tmp_path_factory.mktemp("store")
    full_path = tmp / "full.jsonl"
    write_journal(full_path, records)
    raw = full_path.read_bytes()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
    cut_path = tmp / "cut.jsonl"
    cut_path.write_bytes(raw[:cut])
    state = load_state(cut_path)  # must never raise
    # reconstruct the expectation from the complete lines only
    complete = raw[:cut].decode("utf-8").split("\n")[:-1]
    expected_path = tmp / "expected.jsonl"
    expected_path.write_text("\n".join(complete) + ("\n" if complete else ""))
    expected = load_state(expected_path)
    assert state.results == expected.results
    assert state.attempts == expected.attempts
    assert state.quarantined == expected.quarantined
    # at most the one torn trailing line may differ
    assert abs(state.skipped_lines - expected.skipped_lines) <= 1


def test_resuming_a_completed_campaign_is_a_noop(tmp_path):
    """The user-facing corollary: re-resume appends nothing, runs nothing."""
    campaign = sweep_campaign(
        local_assembly(), "search", "list",
        [1.0, 50.0, 100.0, 200.0], {"elem": 1.0, "res": 1.0},
    )
    store = tmp_path / "s.jsonl"
    first = run_campaign(campaign, store, mode="inline")
    assert first.ok
    snapshot = store.read_bytes()
    for _ in range(3):
        again = run_campaign(campaign, store, mode="inline")
        assert not again.executed and again.attempts == 0
        assert again.results == first.results
        assert store.read_bytes() == snapshot  # byte-for-byte untouched
