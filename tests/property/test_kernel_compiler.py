"""Property tests for the kernel compiler's equivalence contract.

The compiler promises that a :class:`CompiledKernel` is observationally
identical to ``Expression.evaluate``: same values (bitwise — CSE never
reorders operations and constant folding uses the same ufuncs), same
broadcasting, same guarded-function clamps at domain edges, and the same
:class:`UnboundParameterError` on missing bindings.  Random trees over
both tame and edge-case domains assert exactly that.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnboundParameterError
from repro.symbolic import (
    Binary,
    Call,
    Constant,
    Expression,
    Parameter,
    compile_expression,
)

NAMES = ("x", "y", "z")

#: Includes domain edges on purpose: 0 and negatives under log hit the
#: clamp guards, 0 divisors produce infs, inf-inf produces nans — the
#: kernel must reproduce every one of those behaviors, not avoid them.
edge_values = st.one_of(
    st.floats(min_value=0.1, max_value=4.0),
    st.sampled_from([0.0, -1.0, -0.25, 2.0]),
)


def expressions(max_depth: int = 4) -> st.SearchStrategy[Expression]:
    leaves = st.one_of(
        st.floats(min_value=-4.0, max_value=4.0).map(Constant),
        st.sampled_from(NAMES).map(Parameter),
    )

    def extend(children):
        binary = st.builds(
            Binary,
            st.sampled_from(["+", "-", "*", "/", "**"]),
            children,
            children,
        )
        call = st.builds(
            lambda name, arg: Call(name, (arg,)),
            st.sampled_from(["log", "log2", "exp", "sqrt", "abs", "floor"]),
            children,
        )
        unary = children.map(lambda c: -c)
        return st.one_of(binary, call, unary)

    return st.recursive(leaves, extend, max_leaves=2**max_depth)


def identical(a, b) -> bool:
    """Bitwise-or-both-nan equality for scalars and arrays."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return a.shape == b.shape and bool(np.array_equal(a, b, equal_nan=True))


class TestTreeWalkEquivalence:
    @given(expressions(), st.tuples(edge_values, edge_values, edge_values))
    @settings(max_examples=250)
    def test_scalar_env(self, expr, point):
        kernel = compile_expression(expr, cache=False)
        env = dict(zip(NAMES, point))
        with np.errstate(all="ignore"):
            expected = expr.evaluate(env)
            got = kernel.evaluate(env)
        assert identical(got, expected)

    @given(
        expressions(),
        st.lists(edge_values, min_size=1, max_size=8),
        st.tuples(edge_values, edge_values),
        st.sampled_from(NAMES),
    )
    @settings(max_examples=250)
    def test_array_env(self, expr, grid, rest, array_name):
        kernel = compile_expression(expr, cache=False)
        env = dict(zip([n for n in NAMES if n != array_name], rest))
        env[array_name] = np.asarray(grid, dtype=float)
        with np.errstate(all="ignore"):
            expected = expr.evaluate(env)
            got = kernel.evaluate(env)
        if isinstance(expected, np.ndarray):
            assert identical(got, expected)
        else:
            # the array parameter was eliminated (e.g. folded x*0): both
            # routes must then degrade to the same scalar
            assert not isinstance(got, np.ndarray)
            assert identical(got, expected)

    @given(expressions(), st.tuples(edge_values, edge_values, edge_values))
    @settings(max_examples=100)
    def test_all_arrays_broadcast(self, expr, point):
        kernel = compile_expression(expr, cache=False)
        env = {
            name: np.full(5, value) for name, value in zip(NAMES, point)
        }
        with np.errstate(all="ignore"):
            expected = expr.evaluate(env)
            got = kernel.evaluate(env)
        assert identical(got, expected)

    @given(expressions())
    @settings(max_examples=100)
    def test_missing_binding_raises_identically(self, expr):
        free = sorted(expr.free_parameters())
        if not free:
            return
        kernel = compile_expression(expr, cache=False)
        env = {name: 1.0 for name in free[1:]}  # drop one binding
        with pytest.raises(UnboundParameterError):
            with np.errstate(all="ignore"):
                expr.evaluate(env)
        with pytest.raises(UnboundParameterError):
            kernel.evaluate(env)

    @given(expressions())
    @settings(max_examples=100)
    def test_compiled_statistics_are_consistent(self, expr):
        kernel = compile_expression(expr, cache=False)
        assert kernel.tree_nodes == expr.node_count()
        assert kernel.dag_nodes <= kernel.tree_nodes
        assert kernel.op_count <= kernel.dag_nodes
        assert set(kernel.parameters) == expr.free_parameters()
