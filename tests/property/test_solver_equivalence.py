"""Property tests: sparse and dense solver backends are interchangeable.

The solver layer (:mod:`repro.markov.solvers`) promises that backend choice
is a pure performance decision — absorption probabilities, expected visits
and expected steps must agree between the dense path and both sparse paths
(``splu`` and the triangular DAG substitution) to solver tolerance, and
ill-posed chains must raise the *same* typed errors through every backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotAbsorbingError, NumericalInstabilityError
from repro.markov import AbsorbingChainAnalysis, DiscreteTimeMarkovChain
from repro.markov.solvers import scipy_available

pytestmark = pytest.mark.skipif(
    not scipy_available(), reason="sparse backend requires scipy"
)


@st.composite
def sparse_chains(draw, max_transient=24):
    """Random *sparse* absorbing chains, cyclic or DAG-shaped.

    Each transient row gets at most three successors (so large instances
    are genuinely sparse) plus guaranteed positive mass toward the
    absorbing pair.  ``allow_back_edges`` decides whether the transient
    graph may contain cycles — covering both the ``sparse-lu`` and the
    ``sparse-tri`` backends.
    """
    k = draw(st.integers(min_value=2, max_value=max_transient))
    allow_back_edges = draw(st.booleans())
    states = [f"t{i}" for i in range(k)] + ["End", "Fail"]
    n = len(states)
    matrix = np.zeros((n, n))
    for i in range(k):
        lo, hi = (0, k - 1) if allow_back_edges else (i + 1, k - 1)
        candidates = [j for j in range(lo, hi + 1) if j != i]
        successors = (
            draw(
                st.lists(
                    st.sampled_from(candidates), min_size=0, max_size=3,
                    unique=True,
                )
            )
            if candidates
            else []
        )
        row = np.zeros(n)
        for j in successors:
            row[j] = draw(st.floats(min_value=0.05, max_value=1.0))
        row[k] = draw(st.floats(min_value=0.05, max_value=1.0))     # End
        row[k + 1] = draw(st.floats(min_value=0.0, max_value=1.0))  # Fail
        matrix[i] = row / row.sum()
    matrix[k, k] = 1.0
    matrix[k + 1, k + 1] = 1.0
    return DiscreteTimeMarkovChain(states, matrix)


class TestBackendEquivalence:
    @given(sparse_chains())
    @settings(max_examples=100)
    def test_absorption_agrees(self, chain):
        dense = AbsorbingChainAnalysis(chain, solver="dense")
        sparse = AbsorbingChainAnalysis(chain, solver="sparse")
        assert sparse.solver_backend in ("sparse-lu", "sparse-tri")
        for start in dense.transient_states:
            for target in dense.absorbing_states:
                assert sparse.absorption_probability(
                    start, target
                ) == pytest.approx(
                    dense.absorption_probability(start, target), abs=1e-9
                )

    @given(sparse_chains())
    @settings(max_examples=75)
    def test_expected_steps_agree(self, chain):
        dense = AbsorbingChainAnalysis(chain, solver="dense")
        sparse = AbsorbingChainAnalysis(chain, solver="sparse")
        for start in dense.transient_states:
            assert sparse.expected_steps_to_absorption(
                start
            ) == pytest.approx(
                dense.expected_steps_to_absorption(start),
                rel=1e-9, abs=1e-9,
            )

    @given(sparse_chains(max_transient=10))
    @settings(max_examples=50)
    def test_expected_visits_agree(self, chain):
        dense = AbsorbingChainAnalysis(chain, solver="dense")
        sparse = AbsorbingChainAnalysis(chain, solver="sparse")
        for start in dense.transient_states:
            for state in dense.transient_states:
                assert sparse.expected_visits(start, state) == pytest.approx(
                    dense.expected_visits(start, state), rel=1e-9, abs=1e-9
                )

    @given(sparse_chains())
    @settings(max_examples=75)
    def test_auto_matches_dense(self, chain):
        dense = AbsorbingChainAnalysis(chain, solver="dense")
        auto = AbsorbingChainAnalysis(chain, solver="auto")
        for start in dense.transient_states:
            assert auto.absorption_probability(
                start, "End"
            ) == pytest.approx(
                dense.absorption_probability(start, "End"), abs=1e-9
            )


class TestErrorParity:
    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=25)
    def test_trapped_transients_raise_through_every_backend(self, k):
        """A transient cycle with no escape is singular; both backends
        must diagnose it as NotAbsorbingError, not return garbage."""
        states = [f"t{i}" for i in range(k)] + ["End"]
        matrix = np.zeros((k + 1, k + 1))
        for i in range(k):
            matrix[i, (i + 1) % k] = 1.0  # pure cycle, never absorbs
        matrix[k, k] = 1.0
        chain = DiscreteTimeMarkovChain(states, matrix)
        for solver in ("dense", "sparse", "auto"):
            with pytest.raises(NotAbsorbingError):
                AbsorbingChainAnalysis(chain, solver=solver)

    @given(st.floats(min_value=1e-16, max_value=1e-14))
    @settings(max_examples=25)
    def test_near_singular_raises_through_every_backend(self, escape):
        """A nearly-trapped state (escape mass ~1e-15) produces a condition
        estimate beyond MAX_CONDITION on every backend."""
        states = ["t0", "t1", "End"]
        matrix = np.array(
            [
                [0.0, 1.0, 0.0],
                [1.0 - escape, 0.0, escape],
                [0.0, 0.0, 1.0],
            ]
        )
        chain = DiscreteTimeMarkovChain(states, matrix)
        for solver in ("dense", "sparse"):
            with pytest.raises(
                (NumericalInstabilityError, NotAbsorbingError)
            ):
                AbsorbingChainAnalysis(chain, solver=solver)
