"""Property tests for the Markov substrate."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.markov import AbsorbingChainAnalysis, DiscreteTimeMarkovChain


@st.composite
def absorbing_chains(draw, max_transient=5):
    """Random chains: transient states t0..tk feeding End/Fail, with every
    transient state given a positive escape path (so the analysis is
    well-posed)."""
    k = draw(st.integers(min_value=1, max_value=max_transient))
    states = [f"t{i}" for i in range(k)] + ["End", "Fail"]
    n = len(states)
    matrix = np.zeros((n, n))
    for i in range(k):
        weights = np.array(
            [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(n)]
        )
        # guarantee positive mass toward the absorbing pair
        weights[k] += draw(st.floats(min_value=0.05, max_value=1.0))
        weights[k + 1] += draw(st.floats(min_value=0.0, max_value=1.0))
        matrix[i] = weights / weights.sum()
    matrix[k, k] = 1.0
    matrix[k + 1, k + 1] = 1.0
    return DiscreteTimeMarkovChain(states, matrix)


class TestAbsorptionInvariants:
    @given(absorbing_chains())
    @settings(max_examples=200)
    def test_distribution_sums_to_one(self, chain):
        analysis = AbsorbingChainAnalysis(chain)
        for state in analysis.transient_states:
            dist = analysis.absorption_distribution(state)
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-9)

    @given(absorbing_chains())
    @settings(max_examples=200)
    def test_probabilities_in_unit_interval(self, chain):
        analysis = AbsorbingChainAnalysis(chain)
        for start in analysis.transient_states:
            for target in analysis.absorbing_states:
                value = analysis.absorption_probability(start, target)
                assert 0.0 <= value <= 1.0

    @given(absorbing_chains())
    @settings(max_examples=200)
    def test_expected_steps_at_least_one(self, chain):
        """From a transient state at least one transition happens."""
        analysis = AbsorbingChainAnalysis(chain)
        for start in analysis.transient_states:
            assert analysis.expected_steps_to_absorption(start) >= 1.0 - 1e-12

    @given(absorbing_chains())
    @settings(max_examples=200)
    def test_self_visits_at_least_one(self, chain):
        analysis = AbsorbingChainAnalysis(chain)
        for state in analysis.transient_states:
            assert analysis.expected_visits(state, state) >= 1.0 - 1e-12

    @given(absorbing_chains())
    @settings(max_examples=150)
    def test_one_step_conditioning(self, chain):
        """p*(s, End) = sum_k P(s, k) p*(k, End) — the defining linear
        system, checked directly against the computed solution."""
        analysis = AbsorbingChainAnalysis(chain)
        for state in analysis.transient_states:
            expected = 0.0
            for successor, probability in chain.successors(state).items():
                expected += probability * analysis.absorption_probability(
                    successor, "End"
                )
            assert analysis.absorption_probability(state, "End") == pytest.approx(
                expected, abs=1e-9
            )

    @given(absorbing_chains())
    @settings(max_examples=100)
    def test_matches_power_iteration(self, chain):
        """Absorption probabilities equal the limit of P^n."""
        analysis = AbsorbingChainAnalysis(chain)
        limit = chain.n_step_matrix(4000)
        end_column = chain.index("End")
        for state in analysis.transient_states:
            assert analysis.absorption_probability(state, "End") == pytest.approx(
                float(limit[chain.index(state), end_column]), abs=1e-7
            )


class TestFailureMonotonicity:
    @given(absorbing_chains(), st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=150)
    def test_shifting_mass_to_fail_lowers_end_absorption(self, chain, shift):
        """Moving probability mass from End to Fail on one row can only
        reduce absorption in End from every state — the structural fact
        behind 'a less reliable callee never helps'."""
        analysis = AbsorbingChainAnalysis(chain)
        t0 = chain.index("t0")
        end, fail = chain.index("End"), chain.index("Fail")
        matrix = chain.matrix.copy()
        moved = min(shift, matrix[t0, end])
        assume(moved > 0)
        matrix[t0, end] -= moved
        matrix[t0, fail] += moved
        worse = AbsorbingChainAnalysis(
            DiscreteTimeMarkovChain(chain.states, matrix)
        )
        for state in analysis.transient_states:
            assert worse.absorption_probability(state, "End") <= (
                analysis.absorption_probability(state, "End") + 1e-12
            )
