"""Property tests for the fused execution path's parity contract.

The fused executor promises that one stacked kernel call is *bitwise*
identical to the per-point loop it replaces — ``pfail_stack(points)``
must return exactly ``[pfail(p) for p in points]``, and
``CompiledKernel.evaluate_stack`` must match scalar ``evaluate`` calls
element for element.  Random expressions and random point stacks assert
exactly that, on both the compiled-kernel and tree-walk variants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.plan import compile_plan
from repro.scenarios import local_assembly, remote_assembly
from repro.symbolic import compile_expression

from test_kernel_compiler import NAMES, expressions

finite_values = st.floats(
    min_value=0.05, max_value=4.0, allow_nan=False, allow_infinity=False
)


def stacks(n):
    """One (n,)-column per parameter name."""
    return st.fixed_dictionaries({
        name: st.lists(finite_values, min_size=n, max_size=n)
        for name in NAMES
    })


class TestEvaluateStackParity:
    @given(expressions(), st.integers(1, 7).flatmap(
        lambda n: st.tuples(st.just(n), stacks(n))
    ))
    @settings(max_examples=150, deadline=None)
    def test_stack_matches_scalar_calls(self, expression, case):
        n, columns = case
        kernel = compile_expression(expression, cache=False)
        arrays = {
            name: np.asarray(values, dtype=float)
            for name, values in columns.items()
        }
        with np.errstate(all="ignore"):
            stacked = kernel.evaluate_stack(arrays, n)
            scalar = np.array([
                kernel.evaluate({k: v[i] for k, v in arrays.items()})
                for i in range(n)
            ], dtype=float)
        assert stacked.shape == (n,)
        assert np.array_equal(stacked, scalar, equal_nan=True)

    @given(expressions(), st.integers(1, 5).flatmap(
        lambda n: st.tuples(st.just(n), stacks(n))
    ))
    @settings(max_examples=75, deadline=None)
    def test_scalar_columns_broadcast(self, expression, case):
        """Scalar-valued columns (one value shared by every point) give
        the same stack as materialized (n,) columns."""
        n, columns = case
        kernel = compile_expression(expression, cache=False)
        arrays = {
            name: np.asarray(values, dtype=float)
            for name, values in columns.items()
        }
        shared = {
            # alternate: even slots stay full columns, odd collapse to
            # their first value repeated
            name: (col if i % 2 == 0
                   else float(col[0]))
            for i, (name, col) in enumerate(arrays.items())
        }
        materialized = {
            name: (col if isinstance(col, np.ndarray)
                   else np.full(n, col))
            for name, col in shared.items()
        }
        with np.errstate(all="ignore"):
            lhs = kernel.evaluate_stack(shared, n)
            rhs = kernel.evaluate_stack(materialized, n)
        assert np.array_equal(lhs, rhs, equal_nan=True)

    @given(expressions(), st.integers(1, 4).flatmap(
        lambda n: st.tuples(st.just(n), stacks(n))
    ))
    @settings(max_examples=50, deadline=None)
    def test_result_never_aliases_input(self, expression, case):
        n, columns = case
        kernel = compile_expression(expression, cache=False)
        arrays = {
            name: np.asarray(values, dtype=float)
            for name, values in columns.items()
        }
        with np.errstate(all="ignore"):
            result = kernel.evaluate_stack(arrays, n)
            again = kernel.evaluate_stack(arrays, n)
        for column in arrays.values():
            assert not np.shares_memory(result, column)
        # nor a reused internal buffer: back-to-back calls are distinct
        assert not np.shares_memory(result, again)


@pytest.fixture(params=["local", "remote"], scope="module")
def plan(request):
    assembly = (
        local_assembly() if request.param == "local" else remote_assembly()
    )
    return compile_plan(assembly, "search")


class TestPfailStackParity:
    @given(points=st.lists(
        st.fixed_dictionaries({
            "elem": st.floats(min_value=0.5, max_value=4.0),
            "list": st.floats(min_value=1.0, max_value=2000.0),
            "res": st.floats(min_value=0.5, max_value=4.0),
        }),
        min_size=1, max_size=9,
    ))
    @settings(max_examples=40, deadline=None)
    def test_stack_matches_loop(self, plan, points):
        stacked = plan.pfail_stack(points)
        loop = np.array([plan.pfail(p) for p in points], dtype=float)
        assert np.array_equal(stacked, loop)

    @given(points=st.lists(
        st.fixed_dictionaries({
            "elem": st.floats(min_value=0.5, max_value=4.0),
            "list": st.floats(min_value=1.0, max_value=2000.0),
            "res": st.floats(min_value=0.5, max_value=4.0),
        }),
        min_size=1, max_size=6,
    ))
    @settings(max_examples=25, deadline=None)
    def test_kernel_and_tree_walk_agree(self, plan, points):
        kernel = plan.pfail_stack(points, use_kernel=True)
        tree = plan.pfail_stack(points, use_kernel=False)
        assert np.array_equal(kernel, tree)
