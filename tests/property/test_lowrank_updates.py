"""Property tests: the low-rank update path is never silently wrong.

The Sherman-Morrison-Woodbury layer (:mod:`repro.markov.updates`) promises
*exact parity or loud fallback*: for any perturbation — including ones
driving the capacitance matrix toward singularity — the incremental path
either serves a solution indistinguishable from the full re-factorization
(within the guard-implied error bound) or rejects the update and re-factors.
These tests push perturbed systems through fourteen orders of magnitude of
conditioning and assert that backward-stable residuals hold on every path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import DiscreteTimeMarkovChain
from repro.markov import updates
from repro.markov.solvers import chain_plan, factorize_chain, scipy_available
from repro.markov.updates import (
    RowDelta,
    UpdateRejected,
    apply_low_rank_update,
    extract_row_delta,
    update_counts,
)


def near_singular_chain():
    """Cyclic base chain whose t1 -> t0 return mass is nearly 1, so a
    perturbation of the t0 row controls how singular ``I - Q'`` gets."""
    states = ["t0", "t1", "End", "Fail"]
    r = 1.0 - 1e-9
    matrix = np.array(
        [
            [0.0, 0.6, 0.3, 0.1],
            [r, 0.0, 0.7 * (1.0 - r), 0.3 * (1.0 - r)],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    return DiscreteTimeMarkovChain(states, matrix)


def perturbed_matrix(chain, epsilon: float) -> np.ndarray:
    """Same pattern, t0 -> t1 mass pushed to ``1 - epsilon``: the perturbed
    ``det(I - Q') ~ epsilon``, spanning well-conditioned to near-singular."""
    out = chain.matrix.copy()
    out[0] = [0.0, 1.0 - epsilon, 0.7 * epsilon, 0.3 * epsilon]
    return out


def transient_system(matrix: np.ndarray) -> np.ndarray:
    transient = np.array([0, 1])
    return np.eye(2) - matrix[np.ix_(transient, transient)]


@pytest.mark.skipif(not scipy_available(),
                    reason="incremental path requires scipy")
class TestNeverSilentlyWrong:
    def factor_incremental(self, epsilon):
        chain = near_singular_chain()
        mask = np.array([False, False, True, True])
        plan = chain_plan(chain.matrix, mask, solver="dense", cache=False)
        factorize_chain(chain.matrix, plan, incremental=True)  # warm slot
        perturbed = perturbed_matrix(chain, epsilon)
        before = update_counts()
        fact = factorize_chain(perturbed, plan, incremental=True)
        after = update_counts()
        return fact, transient_system(perturbed), before, after

    @given(st.floats(min_value=-16.0, max_value=-1.0))
    @settings(max_examples=80, deadline=None)
    def test_residual_is_backward_stable_on_every_path(self, exponent):
        """Whatever path served the solve — SMW update or condition-guard
        fallback — the returned solution's residual is that of a
        backward-stable solver, at any conditioning."""
        epsilon = 10.0 ** exponent
        fact, system, _, _ = self.factor_incremental(epsilon)
        rhs = np.array([1.0, 0.25])
        x = fact.solve(rhs)
        residual = np.abs(system @ x - rhs).max()
        scale = np.abs(system).sum(axis=0).max() * np.abs(x).max() + 1.0
        assert residual <= 1e-10 * scale

    @given(st.floats(min_value=-6.0, max_value=-1.0))
    @settings(max_examples=40, deadline=None)
    def test_benign_perturbations_take_the_update_path(self, exponent):
        fact, system, before, after = self.factor_incremental(10.0 ** exponent)
        assert fact.method.endswith("+smw")
        assert after["applied"] == before["applied"] + 1
        rhs = np.array([0.5, 1.0])
        np.testing.assert_allclose(
            fact.solve(rhs), np.linalg.solve(system, rhs),
            rtol=1e-6, atol=1e-9,
        )

    @given(st.floats(min_value=-16.0, max_value=-12.0))
    @settings(max_examples=40, deadline=None)
    def test_near_singular_capacitance_falls_back_loudly(self, exponent):
        """At det ~ 1e-12 the capacitance guard must fire: the solve is
        served by a fresh factorization and the fallback counter moves —
        not by a quietly inaccurate update."""
        fact, _, before, after = self.factor_incremental(10.0 ** exponent)
        assert "+smw" not in fact.method
        assert after["fallback_condition"] == before["fallback_condition"] + 1
        assert after["applied"] == before["applied"]


@st.composite
def base_and_delta(draw, max_order=12):
    """A well-conditioned base system plus an arbitrary row-sparse delta
    whose magnitude may make the perturbed system near-singular."""
    m = draw(st.integers(min_value=2, max_value=max_order))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    base = np.eye(m) + rng.uniform(-0.3 / m, 0.3 / m, size=(m, m))
    k = draw(st.integers(min_value=1, max_value=m))
    rows = np.sort(rng.choice(m, size=k, replace=False))
    magnitude = 10.0 ** draw(st.floats(min_value=-8.0, max_value=2.0))
    delta = rng.uniform(-magnitude, magnitude, size=(k, m))
    return base, RowDelta(rows=rows, delta=delta, m=m)


class TestApplyOrReject:
    @given(base_and_delta())
    @settings(max_examples=120, deadline=None)
    def test_applied_updates_match_direct_solve(self, case):
        """apply_low_rank_update either rejects (loudly, with a typed
        reason) or returns a view whose solves match the dense direct
        solve of the perturbed system within the guard-implied bound."""
        from repro.markov.solvers import _DenseFactorization

        base_a, delta = case
        base = _DenseFactorization(base_a)
        perturbed = base_a.copy()
        perturbed[delta.rows] += delta.delta
        try:
            updated = apply_low_rank_update(base, delta)
        except UpdateRejected as rejection:
            assert rejection.reason in ("rank", "condition")
            return
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal(delta.m)
        direct = np.linalg.solve(perturbed, rhs)
        # guard admits condition <= 1e8; double precision leaves ~1e-8,
        # asserted with slack at 1e-6 relative to the solution scale
        np.testing.assert_allclose(
            updated.solve(rhs), direct,
            rtol=1e-6, atol=1e-6 * max(1.0, np.abs(direct).max()),
        )
        np.testing.assert_allclose(
            updated.matvec(direct), perturbed @ direct,
            rtol=1e-9, atol=1e-9,
        )

    @given(base_and_delta(max_order=8))
    @settings(max_examples=60, deadline=None)
    def test_transpose_solve_matches_direct(self, case):
        from repro.markov.solvers import _DenseFactorization

        base_a, delta = case
        base = _DenseFactorization(base_a)
        perturbed = base_a.copy()
        perturbed[delta.rows] += delta.delta
        try:
            updated = apply_low_rank_update(base, delta)
        except UpdateRejected:
            return
        rng = np.random.default_rng(2)
        rhs = rng.standard_normal(delta.m)
        direct = np.linalg.solve(perturbed.T, rhs)
        np.testing.assert_allclose(
            updated.solve_transpose(rhs), direct,
            rtol=1e-6, atol=1e-6 * max(1.0, np.abs(direct).max()),
        )


class TestDeltaExtractionRoundTrip:
    @given(st.integers(min_value=2, max_value=16),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_extracted_delta_reconstructs_the_perturbation(self, m, seed):
        """extract_row_delta of two value gathers rebuilds exactly the
        difference of the two transient systems."""
        rng = np.random.default_rng(seed)
        density = rng.uniform(0.2, 0.9)
        pattern = rng.random((m, m)) < density
        q_rows, q_cols = np.nonzero(pattern)
        if q_rows.size == 0:
            return
        base_values = rng.uniform(0.0, 0.5, size=q_rows.size)
        new_values = base_values.copy()
        changed = rng.random(q_rows.size) < 0.3
        new_values[changed] = rng.uniform(0.0, 0.5, size=int(changed.sum()))
        delta = extract_row_delta(q_rows, q_cols, base_values, new_values, m)
        base_a = np.eye(m)
        base_a[q_rows, q_cols] -= base_values
        new_a = np.eye(m)
        new_a[q_rows, q_cols] -= new_values
        if delta is None:
            np.testing.assert_array_equal(base_a, new_a)
            return
        reconstructed = base_a.copy()
        reconstructed[delta.rows] += delta.delta
        np.testing.assert_allclose(reconstructed, new_a, atol=0.0)
        # every reported row genuinely changed
        for row in delta.rows:
            assert not np.array_equal(base_a[row], new_a[row])
