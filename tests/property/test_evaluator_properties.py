"""Property tests for the evaluators over randomized assemblies.

Random sequential assemblies admit a by-hand oracle: the service survives
iff every state survives, so ``Pfail = 1 - prod_i (1 - p(i, Fail))`` with
the state terms given by the (independently property-tested) state-failure
algebra.  Invariants:

- the numeric evaluator matches the oracle;
- the symbolic evaluator matches the numeric one (also on branching
  flows);
- the Monte Carlo simulator is statistically consistent;
- degrading any provider never improves the assembly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ReliabilityEvaluator,
    SymbolicEvaluator,
    state_failure_probability,
)
from repro.model import (
    AND,
    OR,
    AnalyticInterface,
    Assembly,
    CompositeService,
    FlowBuilder,
    KOfNCompletion,
    ServiceRequest,
    SimpleService,
    perfect_connector,
)
from repro.model.parameters import FormalParameter
from repro.symbolic import Constant

provider_pfails = st.floats(min_value=0.0, max_value=0.3)
internal_pfails = st.floats(min_value=0.0, max_value=0.2)


@st.composite
def sequential_assemblies(draw, max_states=4, max_requests=3):
    """A random composite over random constant-unreliability providers,
    with a purely sequential flow (the oracle-friendly shape)."""
    n_states = draw(st.integers(min_value=1, max_value=max_states))
    assembly = Assembly("random")
    builder = FlowBuilder(formals=())
    state_specs = []
    provider_index = 0
    state_names = []
    for s in range(n_states):
        n_requests = draw(st.integers(min_value=1, max_value=max_requests))
        shared = n_requests >= 2 and draw(st.booleans())
        if n_requests == 1:
            completion = AND
        else:
            completion = draw(
                st.sampled_from(
                    [AND, OR, KOfNCompletion(draw(st.integers(1, n_requests)))]
                )
            )
        requests = []
        spec = []
        if shared:
            slot = f"p{provider_index}"
            pfail = draw(provider_pfails)
            provider_index += 1
            assembly.add_service(
                SimpleService(slot, AnalyticInterface(), Constant(pfail))
            )
            assembly.add_service(perfect_connector(f"loc_{slot}"))
        for r in range(n_requests):
            if not shared:
                slot = f"p{provider_index}"
                pfail = draw(provider_pfails)
                provider_index += 1
                assembly.add_service(
                    SimpleService(slot, AnalyticInterface(), Constant(pfail))
                )
                assembly.add_service(perfect_connector(f"loc_{slot}"))
            internal = draw(internal_pfails)
            requests.append(
                ServiceRequest(
                    slot, actuals={}, internal_failure=Constant(internal)
                )
            )
            spec.append((internal, pfail))
        name = f"s{s}"
        state_names.append(name)
        builder.state(name, requests, completion=completion, shared=shared)
        state_specs.append((completion, shared, spec))
    builder.sequence(*state_names)
    app = CompositeService("app", AnalyticInterface(), builder.build())
    assembly.add_service(app)
    for i in range(provider_index):
        assembly.bind("app", f"p{i}", f"p{i}", connector=f"loc_p{i}")
    return assembly, state_specs


def oracle_pfail(state_specs) -> float:
    survive = 1.0
    for completion, shared, spec in state_specs:
        internal = [i for i, _ in spec]
        external = [e for _, e in spec]
        survive *= 1.0 - state_failure_probability(
            completion, shared, internal, external
        )
    return 1.0 - survive


class TestAgainstOracle:
    @given(sequential_assemblies())
    @settings(max_examples=200, deadline=None)
    def test_numeric_matches_hand_computation(self, data):
        assembly, specs = data
        evaluator = ReliabilityEvaluator(assembly)
        assert evaluator.pfail("app") == pytest.approx(
            oracle_pfail(specs), abs=1e-10
        )

    @given(sequential_assemblies())
    @settings(max_examples=100, deadline=None)
    def test_symbolic_matches_numeric(self, data):
        assembly, _ = data
        numeric = ReliabilityEvaluator(assembly).pfail("app")
        expression = SymbolicEvaluator(assembly).pfail_expression("app")
        assert float(expression.evaluate({})) == pytest.approx(numeric, abs=1e-10)

    @given(sequential_assemblies())
    @settings(max_examples=200, deadline=None)
    def test_result_is_probability(self, data):
        assembly, _ = data
        assert 0.0 <= ReliabilityEvaluator(assembly).pfail("app") <= 1.0


class TestMonotonicity:
    @given(sequential_assemblies(), st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=150, deadline=None)
    def test_degrading_a_provider_never_helps(self, data, degraded):
        assembly, _ = data
        before = ReliabilityEvaluator(assembly).pfail("app")

        worse = Assembly("worse")
        for service in assembly.services:
            if service.name == "p0":
                old = service.failure_probability.constant_value()
                worse.add_service(
                    SimpleService(
                        "p0", AnalyticInterface(),
                        Constant(max(old, degraded)),
                    )
                )
            else:
                worse.add_service(service)
        for binding in assembly.bindings:
            worse.bind(
                binding.consumer, binding.slot, binding.provider,
                connector=binding.connector,
                connector_actuals=dict(binding.connector_actuals),
            )
        after = ReliabilityEvaluator(worse).pfail("app")
        assert after >= before - 1e-12


class TestSimulatorConsistency:
    @given(sequential_assemblies(max_states=2, max_requests=2))
    @settings(max_examples=15, deadline=None)
    def test_monte_carlo_consistent(self, data):
        from repro.simulation import MonteCarloSimulator

        assembly, _ = data
        analytic = ReliabilityEvaluator(assembly).pfail("app")
        result = MonteCarloSimulator(assembly, seed=5).estimate_pfail("app", 4000)
        assert result.consistent_with(analytic, z=5.0)
