"""Unit tests for evaluation environments."""

import numpy as np
import pytest

from repro.errors import SymbolicError, UnboundParameterError
from repro.symbolic import Constant, Environment, Parameter


class TestConstruction:
    def test_from_mapping(self):
        env = Environment({"a": 1, "b": 2.5})
        assert env["a"] == 1.0
        assert env["b"] == 2.5

    def test_from_kwargs(self):
        env = Environment(a=1)
        assert env["a"] == 1.0

    def test_kwargs_override_mapping(self):
        env = Environment({"a": 1}, a=2)
        assert env["a"] == 2.0

    def test_values_coerced_to_float(self):
        assert isinstance(Environment(a=3)["a"], float)

    def test_array_values_kept(self):
        env = Environment(a=np.array([1, 2]))
        np.testing.assert_array_equal(env["a"], np.array([1.0, 2.0]))

    def test_bool_rejected(self):
        with pytest.raises(SymbolicError):
            Environment(a=True)

    def test_non_numeric_rejected(self):
        with pytest.raises(SymbolicError):
            Environment(a="three")


class TestMappingProtocol:
    def test_missing_raises_unbound(self):
        with pytest.raises(UnboundParameterError):
            Environment()["missing"]

    def test_len_iter_contains(self):
        env = Environment(a=1, b=2)
        assert len(env) == 2
        assert set(env) == {"a", "b"}
        assert "a" in env and "c" not in env

    def test_repr_sorted(self):
        assert repr(Environment(b=2, a=1)) == "Environment(a=1.0, b=2.0)"


class TestExtend:
    def test_extend_adds_binding(self):
        env = Environment(a=1).extend(b=2)
        assert env["b"] == 2.0

    def test_extend_does_not_mutate_original(self):
        base = Environment(a=1)
        base.extend(a=9)
        assert base["a"] == 1.0

    def test_extend_overrides(self):
        assert Environment(a=1).extend(a=5)["a"] == 5.0


class TestBindActuals:
    def test_evaluates_actual_expressions_under_caller(self):
        caller = Environment(list=8.0)
        callee = caller.bind_actuals(
            ("N",), {"N": Parameter("list") * 2}
        )
        assert callee["N"] == 16.0

    def test_missing_actual_raises(self):
        with pytest.raises(SymbolicError):
            Environment().bind_actuals(("N",), {})

    def test_extra_actuals_ignored(self):
        callee = Environment(x=1.0).bind_actuals(
            ("a",), {"a": Constant(1.0), "b": Constant(2.0)}
        )
        assert set(callee) == {"a"}
