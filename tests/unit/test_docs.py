"""The documentation is part of the contract: links resolve, examples run.

Thin pytest binding over ``tools/check_docs.py`` (the same script the CI
``docs`` job runs) so doc drift fails the tier-1 suite, not just CI.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402


def test_every_page_exists():
    for name in check_docs.PAGES:
        assert (ROOT / name).exists(), name


def test_no_dead_links():
    problems = []
    for name in check_docs.PAGES:
        problems.extend(check_docs.check_links(ROOT / name))
    assert problems == []


def test_guide_doctests_pass():
    problems = []
    for name in check_docs.DOCTESTED:
        problems.extend(check_docs.check_doctests(ROOT / name))
    assert problems == []


def test_checker_main_is_clean(capsys):
    assert check_docs.main() == 0
    assert "docs ok" in capsys.readouterr().out
