"""Unit tests for the scenario builders themselves."""

import pytest

from repro.core import ReliabilityEvaluator
from repro.errors import ModelError
from repro.model import validate_assembly
from repro.scenarios import (
    BookingParameters,
    DatabaseParameters,
    PipelineParameters,
    RecursiveParameters,
    SearchSortParameters,
    booking_assembly,
    local_assembly,
    pipeline_assembly,
    recursive_assembly,
    remote_assembly,
    replicated_assembly,
)


class TestSearchSortScenario:
    def test_parameters_default_to_paper_values(self):
        p = SearchSortParameters()
        assert p.phi_sort2 == 1e-7
        assert p.gamma == 5e-3

    def test_figure6_point_replaces_only_swept_attributes(self):
        p = SearchSortParameters().with_figure6_point(5e-6, 1e-1)
        assert p.phi_sort1 == 5e-6 and p.gamma == 1e-1
        assert p.phi_sort2 == SearchSortParameters().phi_sort2

    def test_local_structure(self):
        assembly = local_assembly()
        names = {s.name for s in assembly.services}
        assert names == {"cpu1", "search", "sort1", "lpc", "loc1", "loc2", "loc3"}

    def test_remote_structure(self):
        assembly = remote_assembly()
        names = {s.name for s in assembly.services}
        assert {"cpu1", "cpu2", "net12", "search", "sort2", "rpc"} <= names
        assert len([n for n in names if n.startswith("loc")]) == 5

    def test_flows_match_figure_1(self):
        assembly = local_assembly()
        search = assembly.service("search")
        assert [s.name for s in search.flow.states] == ["sort", "search"]
        sort1 = assembly.service("sort1")
        assert [s.name for s in sort1.flow.states] == ["work"]

    def test_q_branching(self):
        """Start -> sort with probability q, -> search with 1-q."""
        p = SearchSortParameters(q=0.25)
        search = local_assembly(p).service("search")
        probabilities = {
            t.target: t.probability.evaluate({}) for t in search.flow.outgoing("Start")
        }
        assert probabilities == {"sort": 0.25, "search": 0.75}

    def test_both_assemblies_validate(self):
        assert validate_assembly(local_assembly()).ok
        assert validate_assembly(remote_assembly()).ok

    def test_unsorted_list_more_reliable_when_skipping_sort(self):
        """q = 0 (never sort) must beat q = 1 (always sort)."""
        never = ReliabilityEvaluator(local_assembly(SearchSortParameters(q=0.0)))
        always = ReliabilityEvaluator(local_assembly(SearchSortParameters(q=1.0)))
        kwargs = dict(elem=1, list=500, res=1)
        assert never.pfail("search", **kwargs) < always.pfail("search", **kwargs)


class TestBookingScenario:
    def test_validates(self):
        assert validate_assembly(booking_assembly()).ok
        assert validate_assembly(booking_assembly(shared_gds=True)).ok

    def test_shared_gds_is_less_reliable(self):
        independent = ReliabilityEvaluator(booking_assembly()).pfail(
            "booking", itinerary=5
        )
        shared = ReliabilityEvaluator(booking_assembly(shared_gds=True)).pfail(
            "booking", itinerary=5
        )
        assert shared > independent

    def test_hotel_probability_branching(self):
        p = BookingParameters(hotel_probability=0.0)
        evaluator = ReliabilityEvaluator(booking_assembly(p))
        report = evaluator.report("booking", itinerary=5)
        visits = {s.state: s.expected_visits for s in report.states}
        assert visits["hotel"] == 0.0

    def test_itinerary_scales_unreliability(self):
        evaluator = ReliabilityEvaluator(booking_assembly())
        assert evaluator.pfail("booking", itinerary=1) < evaluator.pfail(
            "booking", itinerary=20
        )


class TestSharedDbScenario:
    def test_sharing_strictly_worse_under_or(self):
        shared = ReliabilityEvaluator(replicated_assembly(3, shared=True))
        independent = ReliabilityEvaluator(replicated_assembly(3, shared=False))
        assert shared.pfail("report", size=500) > independent.pfail(
            "report", size=500
        )

    def test_and_completion_indifferent_to_sharing(self):
        """The paper's eq. 11 == eq. 6 identity at assembly level."""
        from repro.model import AND

        shared = ReliabilityEvaluator(
            replicated_assembly(3, shared=True, completion=AND)
        ).pfail("report", size=500)
        independent = ReliabilityEvaluator(
            replicated_assembly(3, shared=False, completion=AND)
        ).pfail("report", size=500)
        assert shared == pytest.approx(independent, rel=1e-12)

    def test_more_replicas_help_only_without_sharing(self):
        independent_2 = ReliabilityEvaluator(replicated_assembly(2, False)).pfail(
            "report", size=500
        )
        independent_5 = ReliabilityEvaluator(replicated_assembly(5, False)).pfail(
            "report", size=500
        )
        assert independent_5 < independent_2

        shared_2 = ReliabilityEvaluator(replicated_assembly(2, True)).pfail(
            "report", size=500
        )
        shared_5 = ReliabilityEvaluator(replicated_assembly(5, True)).pfail(
            "report", size=500
        )
        # with sharing, extra replicas only add exposure to the shared
        # service: reliability degrades
        assert shared_5 >= shared_2

    def test_minimum_replicas_enforced(self):
        with pytest.raises(ModelError):
            replicated_assembly(1, shared=True)


class TestPipelineScenario:
    def test_validates(self):
        assert validate_assembly(pipeline_assembly()).ok

    def test_quorum_helps(self):
        strict = PipelineParameters(cdn_quorum=3)
        lenient = PipelineParameters(cdn_quorum=1)
        default = PipelineParameters()  # 2-of-3
        pfails = {
            p.cdn_quorum: ReliabilityEvaluator(pipeline_assembly(p)).pfail(
                "publish", mb=500
            )
            for p in (strict, lenient, default)
        }
        assert pfails[1] < pfails[2] < pfails[3]

    def test_media_size_scales_unreliability(self):
        evaluator = ReliabilityEvaluator(pipeline_assembly())
        assert evaluator.pfail("publish", mb=10) < evaluator.pfail("publish", mb=1000)


class TestRecursiveScenario:
    def test_termination_requires_subunit_probability(self):
        with pytest.raises(ModelError):
            RecursiveParameters(recursion_probability=1.0)

    def test_closed_form_sanity(self):
        from repro.scenarios import closed_form_pfail

        a, b = closed_form_pfail(RecursiveParameters(recursion_probability=0.0))
        # with no recursion, B never calls A: b = 0, a = ia
        assert b == pytest.approx(0.0)
        assert a == pytest.approx(RecursiveParameters().internal_a)

    def test_assembly_is_cyclic(self):
        assert recursive_assembly().find_cycle() is not None


class TestDatabaseParameters:
    def test_defaults(self):
        p = DatabaseParameters()
        assert p.query_selectivity > 0
