"""Unit tests for :class:`repro.runtime.RobustEvaluator` — the graceful
degradation chain.

The central acceptance test forces the symbolic and direct-solve tiers to
fail and asserts the returned result (a) comes from a lower tier,
(b) matches the analytic value within its reported confidence interval,
and (c) records a typed diagnostic for every tier that failed.
"""

import pytest

from repro.core import ReliabilityEvaluator
from repro.errors import (
    AllTiersFailedError,
    BudgetExceededError,
    CyclicAssemblyError,
    EvaluationError,
    NumericalInstabilityError,
    ReproError,
)
from repro.runtime import EvaluationBudget, RobustEvaluator
from repro.scenarios import (
    closed_form_pfail,
    local_assembly,
    recursive_assembly,
)

ACTUALS = {"elem": 1, "list": 500, "res": 1}


def analytic_pfail() -> float:
    return ReliabilityEvaluator(local_assembly()).pfail("search", **ACTUALS)


class TestHappyPath:
    def test_symbolic_tier_wins_on_acyclic_assembly(self):
        result = RobustEvaluator(local_assembly()).evaluate("search", **ACTUALS)
        assert result.tier == "symbolic"
        assert result.exact
        assert not result.degraded
        assert result.diagnostics == ()
        assert result.pfail == pytest.approx(analytic_pfail(), rel=1e-9)

    def test_exact_result_has_degenerate_interval(self):
        result = RobustEvaluator(local_assembly()).evaluate("search", **ACTUALS)
        assert result.confidence_interval == (result.pfail, result.pfail)
        assert result.standard_error == 0.0
        assert result.trials is None

    def test_pfail_and_reliability_helpers(self):
        evaluator = RobustEvaluator(local_assembly())
        pfail = evaluator.pfail("search", **ACTUALS)
        assert evaluator.reliability("search", **ACTUALS) == pytest.approx(
            1.0 - pfail
        )

    def test_unknown_tier_rejected(self):
        with pytest.raises(EvaluationError, match="unknown"):
            RobustEvaluator(local_assembly(), tiers=("symbolic", "psychic"))


class TestNaturalDegradation:
    def test_recursive_assembly_falls_through_to_fixed_point(self):
        """Symbolic and numeric tiers both refuse a cyclic assembly with
        CyclicAssemblyError; the fixed-point tier solves it and the result
        carries both refusals as diagnostics."""
        result = RobustEvaluator(recursive_assembly()).evaluate("A", size=1)
        assert result.tier == "fixed-point"
        assert result.degraded
        failed = [d.tier for d in result.diagnostics]
        assert failed == ["symbolic", "numeric"]
        assert all(
            isinstance(d.error, CyclicAssemblyError) for d in result.diagnostics
        )
        expected, _ = closed_form_pfail()
        assert result.pfail == pytest.approx(expected, rel=1e-6)

    def test_str_reports_tier_and_degradations(self):
        result = RobustEvaluator(recursive_assembly()).evaluate("A", size=1)
        rendered = str(result)
        assert "via fixed-point tier" in rendered
        assert "degraded past symbolic" in rendered
        assert "CyclicAssemblyError" in rendered


class TestForcedDegradationToMonteCarlo:
    """The headline acceptance criterion: break every analytic tier and
    check the Monte Carlo floor still delivers an honest estimate."""

    @pytest.fixture
    def crippled(self, monkeypatch):
        evaluator = RobustEvaluator(local_assembly(), trials=20_000, seed=7)

        def broken(tier):
            def _fail(service, actuals):
                raise NumericalInstabilityError(f"{tier} tier forced to fail")
            return _fail

        monkeypatch.setattr(evaluator, "_tier_symbolic", broken("symbolic"))
        monkeypatch.setattr(evaluator, "_tier_numeric", broken("numeric"))
        monkeypatch.setattr(
            evaluator, "_tier_fixed_point", broken("fixed-point")
        )
        return evaluator

    def test_result_comes_from_lower_tier(self, crippled):
        result = crippled.evaluate("search", **ACTUALS)
        assert result.tier == "monte-carlo"
        assert not result.exact
        assert result.trials == 20_000

    def test_estimate_matches_analytic_within_reported_interval(self, crippled):
        result = crippled.evaluate("search", **ACTUALS)
        low, high = result.confidence_interval
        assert low <= analytic_pfail() <= high
        assert low <= result.pfail <= high
        assert result.standard_error > 0.0

    def test_diagnostics_record_every_failed_tier(self, crippled):
        result = crippled.evaluate("search", **ACTUALS)
        assert [d.tier for d in result.diagnostics] == [
            "symbolic", "numeric", "fixed-point"
        ]
        for diag in result.diagnostics:
            assert isinstance(diag.error, NumericalInstabilityError)
            assert "forced to fail" in str(diag.error)
            assert diag.elapsed >= 0.0


class TestChainContract:
    def test_all_tiers_failing_raises_typed_error(self, monkeypatch):
        evaluator = RobustEvaluator(local_assembly())

        def _fail(service, actuals):
            raise NumericalInstabilityError("forced")

        for tier in ("symbolic", "numeric", "fixed_point", "monte_carlo"):
            monkeypatch.setattr(evaluator, f"_tier_{tier}", _fail)
        with pytest.raises(AllTiersFailedError) as excinfo:
            evaluator.evaluate("search", **ACTUALS)
        assert isinstance(excinfo.value, ReproError)
        assert len(excinfo.value.diagnostics) == 4

    def test_untyped_tier_crash_is_wrapped_not_leaked(self, monkeypatch):
        """A tier raising a bare exception must surface as a typed
        diagnostic while the chain continues."""
        evaluator = RobustEvaluator(local_assembly())

        def _crash(service, actuals):
            raise ZeroDivisionError("tier bug")

        monkeypatch.setattr(evaluator, "_tier_symbolic", _crash)
        result = evaluator.evaluate("search", **ACTUALS)
        assert result.tier == "numeric"
        assert isinstance(result.diagnostics[0].error, EvaluationError)
        assert "ZeroDivisionError" in str(result.diagnostics[0].error)

    def test_non_deadline_budget_trip_degrades(self, monkeypatch):
        """A state-count budget trip in the numeric path is recoverable —
        the chain should fall to Monte Carlo, not abort."""
        budget = EvaluationBudget(max_states=1, max_trials=4_000)
        evaluator = RobustEvaluator(
            local_assembly(), budget=budget, trials=2_000, seed=3,
            tiers=("numeric", "monte-carlo"),
        )
        result = evaluator.evaluate("search", **ACTUALS)
        assert result.tier == "monte-carlo"
        assert isinstance(result.diagnostics[0].error, BudgetExceededError)

    def test_monte_carlo_trials_shed_to_budget(self):
        budget = EvaluationBudget(max_trials=500)
        evaluator = RobustEvaluator(
            local_assembly(), budget=budget, trials=5_000, seed=3,
            tiers=("monte-carlo",),
        )
        result = evaluator.evaluate("search", **ACTUALS)
        assert result.trials == 500
        assert budget.trials_used == 500

    def test_shared_budget_spans_the_chain(self):
        """One envelope across all tiers: what the Monte Carlo tier may
        spend is whatever the earlier tiers left over."""
        budget = EvaluationBudget(max_trials=1_000)
        budget.charge_trials(800)
        evaluator = RobustEvaluator(
            local_assembly(), budget=budget, trials=5_000, seed=3,
            tiers=("monte-carlo",),
        )
        assert evaluator.evaluate("search", **ACTUALS).trials == 200
