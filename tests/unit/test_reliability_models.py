"""Unit tests for the failure-model library and internal-failure models."""

import math

import pytest

from repro.errors import ModelError, ProbabilityRangeError
from repro.reliability import (
    ConstantFailureModel,
    ExponentialFailureModel,
    WeibullFailureModel,
    constant_internal,
    exponential_internal,
    per_operation_internal,
    reliable_call,
)
from repro.symbolic import Constant, Parameter


class TestExponentialModel:
    def test_closed_form(self):
        model = ExponentialFailureModel(rate=0.1)
        assert model.pfail(5.0) == pytest.approx(1 - math.exp(-0.5))

    def test_zero_duration(self):
        assert ExponentialFailureModel(0.5).pfail(0.0) == 0.0

    def test_zero_rate_is_perfect(self):
        assert ExponentialFailureModel(0.0).pfail(1e9) == 0.0

    def test_monotone(self):
        model = ExponentialFailureModel(0.01)
        assert model.pfail(1) < model.pfail(10) < model.pfail(100)

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            ExponentialFailureModel(-0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ModelError):
            ExponentialFailureModel(0.1).pfail(-1.0)

    def test_symbolic_duration(self):
        expr = ExponentialFailureModel(2.0).failure_probability(Parameter("t"))
        assert expr.evaluate({"t": 1.0}) == pytest.approx(1 - math.exp(-2.0))


class TestWeibullModel:
    def test_reduces_to_exponential_at_shape_one(self):
        weibull = WeibullFailureModel(scale=10.0, shape=1.0)
        exponential = ExponentialFailureModel(rate=0.1)
        for t in (0.5, 2.0, 20.0):
            assert weibull.pfail(t) == pytest.approx(exponential.pfail(t))

    def test_characteristic_life(self):
        """At t = scale, P(fail) = 1 - 1/e regardless of shape."""
        for shape in (0.5, 1.0, 3.0):
            model = WeibullFailureModel(scale=7.0, shape=shape)
            assert model.pfail(7.0) == pytest.approx(1 - math.exp(-1))

    def test_wearout_shape_accelerates(self):
        gentle = WeibullFailureModel(scale=10.0, shape=1.0)
        wearout = WeibullFailureModel(scale=10.0, shape=4.0)
        assert wearout.pfail(20.0) > gentle.pfail(20.0)
        assert wearout.pfail(1.0) < gentle.pfail(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            WeibullFailureModel(scale=0.0, shape=1.0)
        with pytest.raises(ModelError):
            WeibullFailureModel(scale=1.0, shape=-1.0)


class TestConstantModel:
    def test_duration_independent(self):
        model = ConstantFailureModel(0.01)
        assert model.pfail(0.0) == model.pfail(1e6) == 0.01

    def test_out_of_range_rejected(self):
        with pytest.raises(ProbabilityRangeError):
            ConstantFailureModel(1.5)


class TestInternalModels:
    def test_reliable_call_is_zero(self):
        assert reliable_call().evaluate({}) == 0.0

    def test_constant_internal(self):
        assert constant_internal(0.25).evaluate({}) == 0.25
        with pytest.raises(ProbabilityRangeError):
            constant_internal(-0.1)

    def test_equation_14(self):
        expr = per_operation_internal(1e-6, Parameter("N"))
        assert expr.evaluate({"N": 0}) == 0.0
        assert expr.evaluate({"N": 1}) == pytest.approx(1e-6)
        assert expr.evaluate({"N": 1e6}) == pytest.approx(1 - (1 - 1e-6) ** 1e6)

    def test_equation_14_range_check(self):
        with pytest.raises(ProbabilityRangeError):
            per_operation_internal(1.1, Constant(1.0))

    def test_exponential_internal_first_order_agreement(self):
        """For small phi*N the two software models agree to first order."""
        phi, n = 1e-7, 1000.0
        discrete = per_operation_internal(phi, Constant(n)).evaluate({})
        continuous = exponential_internal(phi, Constant(n)).evaluate({})
        assert discrete == pytest.approx(continuous, rel=1e-3)

    def test_exponential_internal_monotone(self):
        expr = exponential_internal(1e-4, Parameter("N"))
        assert expr.evaluate({"N": 10}) < expr.evaluate({"N": 100})
