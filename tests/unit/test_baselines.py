"""Unit tests for the related-work baseline models (section 5)."""

import pytest

from repro.baselines import (
    CheungModel,
    PathBasedModel,
    WangModel,
    WangState,
)
from repro.baselines.path_based import EXIT
from repro.errors import (
    InvalidDistributionError,
    ModelError,
    UnknownStateError,
)


class TestCheung:
    def make_linear(self, r1=0.9, r2=0.8):
        return CheungModel(
            reliabilities={"c1": r1, "c2": r2},
            transitions={("c1", "c2"): 1.0},
            initial="c1",
        )

    def test_linear_chain_product(self):
        assert self.make_linear().system_reliability() == pytest.approx(0.72)

    def test_unreliability_complements(self):
        model = self.make_linear()
        assert model.system_unreliability() == pytest.approx(
            1 - model.system_reliability()
        )

    def test_branching(self):
        model = CheungModel(
            reliabilities={"a": 1.0, "b": 0.5, "c": 0.9},
            transitions={("a", "b"): 0.4, ("a", "c"): 0.6},
            initial="a",
        )
        assert model.system_reliability() == pytest.approx(0.4 * 0.5 + 0.6 * 0.9)

    def test_loop(self):
        """A retry loop: visiting c with reliability r and retry probability
        p gives R = r(1-p) / (1 - rp)."""
        r, p = 0.95, 0.3
        model = CheungModel(
            reliabilities={"c": r, "done": 1.0},
            transitions={("c", "c"): p, ("c", "done"): 1 - p},
            initial="c",
        )
        expected = r * (1 - p) / (1 - r * p)
        assert model.system_reliability() == pytest.approx(expected)

    def test_unknown_initial_rejected(self):
        with pytest.raises(UnknownStateError):
            CheungModel({"a": 1.0}, {}, initial="ghost")

    def test_bad_reliability_rejected(self):
        with pytest.raises(ModelError):
            CheungModel({"a": 1.2}, {}, initial="a")

    def test_non_stochastic_transfer_rejected(self):
        with pytest.raises(InvalidDistributionError):
            CheungModel(
                {"a": 1.0, "b": 1.0}, {("a", "b"): 0.5}, initial="a"
            )

    def test_needs_final_component(self):
        with pytest.raises(ModelError):
            CheungModel(
                {"a": 1.0, "b": 1.0},
                {("a", "b"): 1.0, ("b", "a"): 1.0},
                initial="a",
            )


class TestPathBased:
    def make_branching(self):
        return PathBasedModel(
            reliabilities={"a": 0.9, "b": 0.8, "c": 0.95},
            transitions={
                ("a", "b"): 0.5,
                ("a", "c"): 0.5,
                ("b", EXIT): 1.0,
                ("c", EXIT): 1.0,
            },
            initial="a",
        )

    def test_path_enumeration(self):
        paths, truncated = self.make_branching().enumerate_paths()
        assert truncated == 0.0
        assert {p.components for p in paths} == {("a", "b"), ("a", "c")}
        assert sum(p.probability for p in paths) == pytest.approx(1.0)

    def test_weighted_reliability(self):
        expected = 0.5 * (0.9 * 0.8) + 0.5 * (0.9 * 0.95)
        assert self.make_branching().system_reliability() == pytest.approx(expected)

    def test_loop_truncation_reports_mass(self):
        model = PathBasedModel(
            reliabilities={"a": 0.9},
            transitions={("a", "a"): 0.5, ("a", EXIT): 0.5},
            initial="a",
            mass_threshold=1e-3,
        )
        paths, truncated = model.enumerate_paths()
        assert truncated > 0.0
        assert sum(p.probability for p in paths) + truncated == pytest.approx(1.0)

    def test_loop_value_approaches_exact(self):
        """Exact value: sum_k 0.5^(k+1) 0.9^(k+1) = geometric."""
        exact = sum(0.5 ** (k + 1) * 0.9 ** (k + 1) for k in range(200))
        model = PathBasedModel(
            reliabilities={"a": 0.9},
            transitions={("a", "a"): 0.5, ("a", EXIT): 0.5},
            initial="a",
            mass_threshold=1e-15,
        )
        assert model.system_reliability() == pytest.approx(exact, abs=1e-10)

    def test_rows_must_be_stochastic(self):
        with pytest.raises(ModelError):
            PathBasedModel({"a": 0.9}, {("a", EXIT): 0.7}, initial="a")

    def test_unknown_target_rejected(self):
        with pytest.raises(UnknownStateError):
            PathBasedModel({"a": 1.0}, {("a", "ghost"): 1.0}, initial="a")


class TestWang:
    def test_and_state_success(self):
        state = WangState("s", (0.9, 0.8), "and")
        assert state.success_probability() == pytest.approx(0.72)

    def test_or_state_success(self):
        state = WangState("s", (0.9, 0.8), "or")
        assert state.success_probability() == pytest.approx(1 - 0.1 * 0.2)

    def test_empty_state_rejected(self):
        with pytest.raises(ModelError):
            WangState("s", ())

    def test_unknown_completion_rejected(self):
        with pytest.raises(ModelError):
            WangState("s", (0.9,), "xor")

    def test_connector_reliability_on_transition(self):
        model = WangModel(
            states=[WangState("s", (0.9,), "and")],
            transitions=[("s", "C", 1.0, 0.95)],
            initial="s",
        )
        assert model.system_reliability() == pytest.approx(0.9 * 0.95)

    def test_or_redundancy_helps(self):
        redundant = WangModel(
            states=[WangState("s", (0.9, 0.9), "or")],
            transitions=[("s", "C", 1.0, 1.0)],
            initial="s",
        )
        single = WangModel(
            states=[WangState("s", (0.9,), "and")],
            transitions=[("s", "C", 1.0, 1.0)],
            initial="s",
        )
        assert redundant.system_reliability() > single.system_reliability()

    def test_sequential_states(self):
        model = WangModel(
            states=[
                WangState("s1", (0.9,), "and"),
                WangState("s2", (0.8,), "and"),
            ],
            transitions=[("s1", "s2", 1.0, 0.99), ("s2", "C", 1.0, 1.0)],
            initial="s1",
        )
        assert model.system_reliability() == pytest.approx(0.9 * 0.99 * 0.8)

    def test_non_stochastic_rejected(self):
        with pytest.raises(InvalidDistributionError):
            WangModel(
                states=[WangState("s", (0.9,))],
                transitions=[("s", "C", 0.5, 1.0)],
                initial="s",
            )

    def test_duplicate_state_names_rejected(self):
        with pytest.raises(ModelError):
            WangModel(
                states=[WangState("s", (0.9,)), WangState("s", (0.8,))],
                transitions=[("s", "C", 1.0, 1.0)],
                initial="s",
            )
