"""Unit tests for the expression AST."""

import math

import numpy as np
import pytest

from repro.errors import SymbolicError, UnboundParameterError, UnknownFunctionError
from repro.symbolic import (
    Binary,
    Call,
    Constant,
    Environment,
    Expression,
    Parameter,
    Unary,
    as_expression,
)


class TestConstant:
    def test_evaluates_to_its_value(self):
        assert Constant(3.5).evaluate({}) == 3.5

    def test_evaluates_without_environment(self):
        assert Constant(2.0).evaluate() == 2.0

    def test_int_value_coerced_to_float(self):
        c = Constant(3)
        assert isinstance(c.value, float)

    def test_has_no_free_parameters(self):
        assert Constant(1.0).free_parameters() == frozenset()

    def test_is_constant(self):
        assert Constant(1.0).is_constant()
        assert Constant(1.0).constant_value() == 1.0

    def test_rejects_non_numbers(self):
        with pytest.raises(SymbolicError):
            Constant("x")

    def test_rejects_booleans(self):
        with pytest.raises(SymbolicError):
            Constant(True)

    def test_substitute_is_identity(self):
        c = Constant(4.0)
        assert c.substitute({"x": Constant(1.0)}) is c

    def test_str_integral(self):
        assert str(Constant(5.0)) == "5"

    def test_str_fractional(self):
        assert str(Constant(0.25)) == "0.25"


class TestParameter:
    def test_evaluates_from_environment(self):
        assert Parameter("n").evaluate({"n": 7}) == 7.0

    def test_missing_binding_raises(self):
        with pytest.raises(UnboundParameterError) as excinfo:
            Parameter("n").evaluate({})
        assert excinfo.value.name == "n"

    def test_no_environment_raises(self):
        with pytest.raises(UnboundParameterError):
            Parameter("n").evaluate()

    def test_array_binding_broadcasts(self):
        values = np.array([1.0, 2.0, 3.0])
        out = Parameter("n").evaluate({"n": values})
        np.testing.assert_array_equal(out, values)

    def test_free_parameters(self):
        assert Parameter("list").free_parameters() == frozenset({"list"})

    def test_substitute_replaces(self):
        expr = Parameter("x").substitute({"x": Constant(9.0)})
        assert expr == Constant(9.0)

    def test_substitute_leaves_other_names(self):
        p = Parameter("x")
        assert p.substitute({"y": Constant(1.0)}) is p

    def test_empty_name_rejected(self):
        with pytest.raises(SymbolicError):
            Parameter("")

    def test_not_constant(self):
        assert not Parameter("x").is_constant()
        with pytest.raises(SymbolicError):
            Parameter("x").constant_value()


class TestBinary:
    @pytest.mark.parametrize(
        "op,expected",
        [("+", 7.0), ("-", 3.0), ("*", 10.0), ("/", 2.5), ("**", 25.0)],
    )
    def test_arithmetic(self, op, expected):
        expr = Binary(op, Constant(5.0), Constant(2.0))
        assert expr.evaluate({}) == expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(SymbolicError):
            Binary("%", Constant(1.0), Constant(2.0))

    def test_non_expression_operand_rejected(self):
        with pytest.raises(SymbolicError):
            Binary("+", 1.0, Constant(2.0))

    def test_free_parameters_union(self):
        expr = Binary("+", Parameter("a"), Parameter("b"))
        assert expr.free_parameters() == frozenset({"a", "b"})

    def test_substitution_is_simultaneous(self):
        # x -> y and y -> x must swap, not cascade
        expr = Parameter("x") + Parameter("y") * 2
        swapped = expr.substitute({"x": Parameter("y"), "y": Parameter("x")})
        assert swapped.evaluate({"x": 10, "y": 1}) == 1 + 20

    def test_array_evaluation(self):
        expr = Parameter("n") * 2 + 1
        np.testing.assert_array_equal(
            expr.evaluate({"n": np.array([0.0, 1.0, 2.0])}),
            np.array([1.0, 3.0, 5.0]),
        )

    def test_scalar_result_is_python_float(self):
        out = (Parameter("n") * 2).evaluate({"n": 3})
        assert isinstance(out, float)


class TestOperatorOverloads:
    def test_radd_coerces_number(self):
        expr = 1 + Parameter("x")
        assert expr.evaluate({"x": 2}) == 3.0

    def test_rsub(self):
        assert (1 - Parameter("x")).evaluate({"x": 0.25}) == 0.75

    def test_rmul(self):
        assert (3 * Parameter("x")).evaluate({"x": 2}) == 6.0

    def test_rtruediv(self):
        assert (8 / Parameter("x")).evaluate({"x": 2}) == 4.0

    def test_rpow(self):
        assert (2 ** Parameter("x")).evaluate({"x": 3}) == 8.0

    def test_neg(self):
        assert (-Parameter("x")).evaluate({"x": 5}) == -5.0

    def test_string_coerces_to_parameter(self):
        expr = as_expression("list") * 2
        assert expr.evaluate({"list": 4}) == 8.0

    def test_as_expression_rejects_unknown(self):
        with pytest.raises(SymbolicError):
            as_expression(object())

    def test_as_expression_rejects_bool(self):
        with pytest.raises(SymbolicError):
            as_expression(True)


class TestCall:
    def test_log2(self):
        assert Call("log2", (Constant(8.0),)).evaluate({}) == 3.0

    def test_exp(self):
        assert Call("exp", (Constant(0.0),)).evaluate({}) == 1.0

    def test_unknown_function_rejected_at_construction(self):
        with pytest.raises(UnknownFunctionError):
            Call("nope", (Constant(1.0),))

    def test_wrong_arity_rejected(self):
        with pytest.raises(SymbolicError):
            Call("log", (Constant(1.0), Constant(2.0)))

    def test_free_parameters(self):
        expr = Call("max", (Parameter("a"), Parameter("b")))
        assert expr.free_parameters() == frozenset({"a", "b"})

    def test_substitute_recurses_into_args(self):
        expr = Call("log2", (Parameter("n"),)).substitute({"n": Constant(16.0)})
        assert expr.evaluate({}) == 4.0

    def test_log_of_zero_is_clamped(self):
        # workload expressions may hit the zero boundary of size domains
        assert Call("log", (Constant(0.0),)).evaluate({}) == 0.0

    def test_log2_array_with_zero(self):
        out = Call("log2", (Parameter("n"),)).evaluate({"n": np.array([0.0, 4.0])})
        np.testing.assert_array_equal(out, np.array([0.0, 2.0]))


class TestStructuralEquality:
    def test_equal_trees_are_equal_and_hash_equal(self):
        a = Parameter("x") * 2 + 1
        b = Parameter("x") * 2 + 1
        assert a == b
        assert hash(a) == hash(b)

    def test_different_trees_differ(self):
        assert Parameter("x") + 1 != Parameter("x") + 2


class TestSerialization:
    @pytest.mark.parametrize(
        "expr",
        [
            Constant(1.5),
            Parameter("list"),
            Parameter("list") * Call("log2", (Parameter("list"),)),
            -(Parameter("a") + 2) ** Constant(3.0),
            Call("max", (Parameter("a"), Constant(0.0))),
        ],
    )
    def test_round_trip(self, expr):
        assert Expression.from_dict(expr.to_dict()) == expr

    def test_unknown_kind_rejected(self):
        with pytest.raises(SymbolicError):
            Expression.from_dict({"kind": "mystery"})


class TestUnary:
    def test_negation(self):
        assert Unary(Constant(3.0)).evaluate({}) == -3.0

    def test_rejects_non_expression(self):
        with pytest.raises(SymbolicError):
            Unary(3.0)

    def test_str(self):
        assert str(Unary(Parameter("x"))) == "(-x)"


class TestEnvironmentIntegration:
    def test_expression_accepts_environment_object(self):
        env = Environment(n=4.0)
        assert (Parameter("n") ** 2).evaluate(env) == 16.0

    def test_nan_propagates_not_raises(self):
        # evaluation is numpy semantics; range checking happens downstream
        with np.errstate(invalid="ignore"):
            out = (Constant(0.0) / Parameter("x")).evaluate({"x": 0.0})
        assert math.isnan(out)
