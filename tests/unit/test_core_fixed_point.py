"""Unit tests for the fixed-point evaluator (recursive assemblies)."""

import pytest

from repro.core import FixedPointEvaluator, ReliabilityEvaluator
from repro.errors import FixedPointDivergenceError
from repro.scenarios import (
    RecursiveParameters,
    closed_form_pfail,
    local_assembly,
    recursive_assembly,
)


class TestAcyclicEquivalence:
    def test_matches_recursive_evaluator_on_acyclic_assembly(self):
        assembly = local_assembly()
        recursive = ReliabilityEvaluator(assembly)
        fixed = FixedPointEvaluator(assembly)
        for n in (10, 100, 1000):
            assert fixed.pfail("search", elem=1, list=n, res=1) == pytest.approx(
                recursive.pfail("search", elem=1, list=n, res=1), rel=1e-15
            )

    def test_acyclic_converges_in_one_sweep(self):
        fixed = FixedPointEvaluator(local_assembly())
        fixed.pfail("search", elem=1, list=10, res=1)
        assert fixed.iterations_used == 1


class TestCyclicAssemblies:
    def test_matches_algebraic_fixed_point(self):
        params = RecursiveParameters()
        evaluator = FixedPointEvaluator(recursive_assembly(params))
        exact_a, exact_b = closed_form_pfail(params)
        assert evaluator.pfail("A", size=1) == pytest.approx(exact_a, abs=1e-10)
        assert evaluator.pfail("B", size=1) == pytest.approx(exact_b, abs=1e-10)

    @pytest.mark.parametrize("r", [0.0, 0.1, 0.5, 0.9, 0.99])
    def test_across_recursion_probabilities(self, r):
        params = RecursiveParameters(recursion_probability=r)
        evaluator = FixedPointEvaluator(recursive_assembly(params), tolerance=1e-14)
        exact_a, _ = closed_form_pfail(params)
        assert evaluator.pfail("A", size=1) == pytest.approx(exact_a, abs=1e-9)

    def test_kleene_iteration_is_monotone_from_below(self):
        """Each sweep's estimate must not exceed the limit (least fixed
        point reached from 0)."""
        params = RecursiveParameters(recursion_probability=0.8)
        exact_a, _ = closed_form_pfail(params)
        evaluator = FixedPointEvaluator(recursive_assembly(params), tolerance=1e-15)
        value = evaluator.pfail("A", size=1)
        assert value <= exact_a + 1e-12

    def test_deep_recursion_uses_multiple_sweeps(self):
        params = RecursiveParameters(recursion_probability=0.9)
        evaluator = FixedPointEvaluator(recursive_assembly(params))
        evaluator.pfail("A", size=1)
        assert evaluator.iterations_used > 3

    def test_iteration_cap_raises(self):
        params = RecursiveParameters(recursion_probability=0.99)
        evaluator = FixedPointEvaluator(
            recursive_assembly(params), max_iterations=2, tolerance=1e-15
        )
        with pytest.raises(FixedPointDivergenceError):
            evaluator.pfail("A", size=1)

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(FixedPointDivergenceError):
            FixedPointEvaluator(recursive_assembly(), tolerance=0.0)

    def test_result_is_probability(self):
        evaluator = FixedPointEvaluator(recursive_assembly())
        value = evaluator.pfail("A", size=1)
        assert 0.0 <= value <= 1.0

    def test_repeated_queries_consistent(self):
        evaluator = FixedPointEvaluator(recursive_assembly())
        first = evaluator.pfail("A", size=1)
        second = evaluator.pfail("A", size=1)
        assert first == pytest.approx(second, abs=1e-12)
