"""Unit tests for service requests."""

import pytest

from repro.errors import ModelError
from repro.model import ServiceRequest
from repro.symbolic import Constant, Parameter


class TestConstruction:
    def test_minimal(self):
        req = ServiceRequest("sort")
        assert req.target == "sort"
        assert req.internal_failure == Constant(0.0)
        assert req.connector_actuals is None

    def test_actuals_coerced_to_expressions(self):
        req = ServiceRequest("cpu", actuals={"N": 5})
        assert req.actuals["N"] == Constant(5.0)

    def test_string_actual_becomes_parameter(self):
        req = ServiceRequest("cpu", actuals={"N": "list"})
        assert req.actuals["N"] == Parameter("list")

    def test_actuals_are_immutable(self):
        req = ServiceRequest("cpu", actuals={"N": 1})
        with pytest.raises(TypeError):
            req.actuals["N"] = Constant(2.0)

    def test_empty_target_rejected(self):
        with pytest.raises(ModelError):
            ServiceRequest("")

    def test_bad_actual_name_rejected(self):
        with pytest.raises(ModelError):
            ServiceRequest("cpu", actuals={"not a name": 1})

    def test_connector_actuals_frozen(self):
        req = ServiceRequest("sort", connector_actuals={"ip": Parameter("n")})
        with pytest.raises(TypeError):
            req.connector_actuals["ip"] = Constant(1.0)


class TestFreeParameters:
    def test_collects_from_all_expression_families(self):
        req = ServiceRequest(
            "sort",
            actuals={"list": Parameter("list")},
            internal_failure=1 - (1 - Constant(1e-6)) ** Parameter("ops"),
            connector_actuals={"ip": Parameter("elem") + Parameter("list")},
        )
        assert req.free_parameters() == {"list", "ops", "elem"}

    def test_no_parameters(self):
        assert ServiceRequest("x", actuals={"a": 1}).free_parameters() == frozenset()


class TestDescribe:
    def test_renders_call_syntax(self):
        req = ServiceRequest("sort", actuals={"list": Parameter("list")})
        assert req.describe() == "call(sort, list=list)"

    def test_renders_label(self):
        req = ServiceRequest("net", actuals={"B": 1}, label="transmit ip")
        assert "# transmit ip" in str(req)

    def test_no_args(self):
        assert ServiceRequest("ping").describe() == "call(ping)"
