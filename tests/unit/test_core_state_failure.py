"""Unit tests for the per-state failure math (equations 4-13)."""

import numpy as np
import pytest

from repro.core import (
    and_no_sharing,
    and_sharing,
    external_failure_probability,
    or_no_sharing,
    or_sharing,
    poisson_binomial_below,
    request_failure_probability,
    state_failure_probability,
)
from repro.errors import ModelError, ProbabilityRangeError
from repro.model import AND, OR, KOfNCompletion


class TestEquation8And13:
    def test_request_failure_combines_independent_causes(self):
        # 1 - (1-0.1)(1-0.2) = 0.28
        assert request_failure_probability(0.1, 0.2) == pytest.approx(0.28)

    def test_external_combines_service_and_connector(self):
        assert external_failure_probability(0.1, 0.2) == pytest.approx(0.28)

    def test_zero_everything_never_fails(self):
        assert request_failure_probability(0.0, 0.0) == 0.0

    def test_certain_failure_dominates(self):
        assert request_failure_probability(1.0, 0.0) == 1.0
        assert external_failure_probability(0.0, 1.0) == 1.0

    def test_range_violations_rejected(self):
        with pytest.raises(ProbabilityRangeError):
            request_failure_probability(1.2, 0.0)
        with pytest.raises(ProbabilityRangeError):
            external_failure_probability(0.0, -0.2)

    def test_array_broadcast(self):
        out = request_failure_probability(np.array([0.0, 0.1]), 0.5)
        np.testing.assert_allclose(out, [0.5, 0.55])


class TestPoissonBinomial:
    def test_all_or_nothing(self):
        probs = [0.9, 0.8, 0.7]
        # P(fewer than 3 succeed) = 1 - prod
        assert poisson_binomial_below(probs, 3) == pytest.approx(1 - 0.9 * 0.8 * 0.7)

    def test_below_one_is_all_fail(self):
        probs = [0.9, 0.8]
        assert poisson_binomial_below(probs, 1) == pytest.approx(0.1 * 0.2)

    def test_below_zero_is_zero(self):
        assert poisson_binomial_below([0.5], 0) == 0.0

    def test_no_trials_with_requirement(self):
        assert poisson_binomial_below([], 1) == 1.0

    def test_two_of_three_closed_form(self):
        p = [0.9, 0.8, 0.7]
        # P(<2) = P(0) + P(1)
        p0 = 0.1 * 0.2 * 0.3
        p1 = 0.9 * 0.2 * 0.3 + 0.1 * 0.8 * 0.3 + 0.1 * 0.2 * 0.7
        assert poisson_binomial_below(p, 2) == pytest.approx(p0 + p1)

    def test_out_of_range_k_rejected(self):
        with pytest.raises(ModelError):
            poisson_binomial_below([0.5], 3)

    def test_matches_binomial_for_equal_probs(self):
        from math import comb

        p, n, k = 0.6, 6, 4
        expected = sum(
            comb(n, j) * p**j * (1 - p) ** (n - j) for j in range(k)
        )
        assert poisson_binomial_below([p] * n, k) == pytest.approx(expected)


class TestClosedFormsAgainstEngine:
    """The general engine must reproduce the paper's printed equations."""

    INTERNAL = [0.01, 0.03, 0.002]
    EXTERNAL = [0.05, 0.001, 0.02]

    def test_and_no_sharing_is_eq6(self):
        engine = state_failure_probability(AND, False, self.INTERNAL, self.EXTERNAL)
        closed = and_no_sharing(self.INTERNAL, self.EXTERNAL)
        assert engine == pytest.approx(closed, rel=1e-14)

    def test_or_no_sharing_is_eq7(self):
        engine = state_failure_probability(OR, False, self.INTERNAL, self.EXTERNAL)
        closed = or_no_sharing(self.INTERNAL, self.EXTERNAL)
        assert engine == pytest.approx(closed, rel=1e-14)

    def test_and_sharing_is_eq11(self):
        engine = state_failure_probability(AND, True, self.INTERNAL, self.EXTERNAL)
        closed = and_sharing(self.INTERNAL, self.EXTERNAL)
        assert engine == pytest.approx(closed, rel=1e-14)

    def test_or_sharing_is_eq12(self):
        engine = state_failure_probability(OR, True, self.INTERNAL, self.EXTERNAL)
        closed = or_sharing(self.INTERNAL, self.EXTERNAL)
        assert engine == pytest.approx(closed, rel=1e-14)

    def test_paper_identity_and_insensitive_to_sharing(self):
        """Section 3.2: eq. (11) reduces to eq. (6)."""
        assert and_sharing(self.INTERNAL, self.EXTERNAL) == pytest.approx(
            and_no_sharing(self.INTERNAL, self.EXTERNAL), rel=1e-14
        )

    def test_paper_inequality_or_sharing_hurts(self):
        """Section 3.2: sharing destroys OR redundancy (strictly, whenever
        external failures are possible and internal ones not certain)."""
        assert or_sharing(self.INTERNAL, self.EXTERNAL) > or_no_sharing(
            self.INTERNAL, self.EXTERNAL
        )


class TestStateFailureEdgeCases:
    def test_empty_state_never_fails(self):
        assert state_failure_probability(AND, False, [], []) == 0.0

    def test_single_request_and_or_coincide(self):
        for shared in (False,):
            a = state_failure_probability(AND, shared, [0.1], [0.2])
            o = state_failure_probability(OR, shared, [0.1], [0.2])
            assert a == pytest.approx(o)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            state_failure_probability(AND, False, [0.1], [])

    def test_k_of_n_between_and_and_or(self):
        internal = [0.02, 0.05, 0.01, 0.04]
        external = [0.03, 0.02, 0.06, 0.01]
        p_or = state_failure_probability(OR, False, internal, external)
        p_2of4 = state_failure_probability(
            KOfNCompletion(2), False, internal, external
        )
        p_3of4 = state_failure_probability(
            KOfNCompletion(3), False, internal, external
        )
        p_and = state_failure_probability(AND, False, internal, external)
        assert p_or < p_2of4 < p_3of4 < p_and

    def test_k_of_n_sharing_reduces_to_and_or_limits(self):
        internal = [0.02, 0.05, 0.01]
        external = [0.03, 0.02, 0.06]
        assert state_failure_probability(
            KOfNCompletion(3), True, internal, external
        ) == pytest.approx(and_sharing(internal, external), rel=1e-14)
        assert state_failure_probability(
            KOfNCompletion(1), True, internal, external
        ) == pytest.approx(or_sharing(internal, external), rel=1e-14)

    def test_certain_external_failure_with_sharing_kills_state(self):
        assert state_failure_probability(OR, True, [0.0, 0.0], [0.0, 1.0]) == 1.0

    def test_certain_external_failure_without_sharing_survivable(self):
        value = state_failure_probability(OR, False, [0.0, 0.0], [0.0, 1.0])
        assert value == 0.0  # the other replica still succeeds

    def test_vectorized_inputs(self):
        internal = [np.array([0.0, 0.01]), 0.02]
        external = [0.03, np.array([0.0, 0.04])]
        out = state_failure_probability(OR, False, internal, external)
        assert out.shape == (2,)
        scalar0 = state_failure_probability(OR, False, [0.0, 0.02], [0.03, 0.0])
        np.testing.assert_allclose(out[0], scalar0)
