"""Unit tests for the continuous-time Markov chain module."""

import math

import numpy as np
import pytest

from repro.errors import InvalidDistributionError, MarkovError, UnknownStateError
from repro.markov import ContinuousTimeMarkovChain


def absorbing_failure_chain(rate: float) -> ContinuousTimeMarkovChain:
    """working -> failed at `rate`, failed absorbing — the eq. (1) chain."""
    return ContinuousTimeMarkovChain(
        ("working", "failed"),
        np.array([[-rate, rate], [0.0, 0.0]]),
    )


def repairable_chain(lam: float, mu: float) -> ContinuousTimeMarkovChain:
    return ContinuousTimeMarkovChain(
        ("up", "down"),
        np.array([[-lam, lam], [mu, -mu]]),
    )


class TestConstruction:
    def test_valid(self):
        chain = repairable_chain(1.0, 2.0)
        assert chain.rate("up", "down") == 1.0
        assert not chain.is_absorbing_state("up")

    def test_negative_off_diagonal_rejected(self):
        with pytest.raises(InvalidDistributionError):
            ContinuousTimeMarkovChain(
                ("a", "b"), np.array([[1.0, -1.0], [0.0, 0.0]])
            )

    def test_rows_must_sum_to_zero(self):
        with pytest.raises(InvalidDistributionError):
            ContinuousTimeMarkovChain(
                ("a", "b"), np.array([[-1.0, 2.0], [0.0, 0.0]])
            )

    def test_duplicate_states_rejected(self):
        with pytest.raises(InvalidDistributionError):
            ContinuousTimeMarkovChain(("a", "a"), np.zeros((2, 2)))

    def test_unknown_state_raises(self):
        with pytest.raises(UnknownStateError):
            repairable_chain(1.0, 1.0).rate("up", "ghost")

    def test_absorbing_detection(self):
        assert absorbing_failure_chain(1.0).is_absorbing_state("failed")


class TestTransient:
    def test_matches_equation_1(self):
        """P(failed by t) = 1 - e^(-lambda t): the paper's eq. (1) as CTMC
        absorption."""
        lam = 0.7
        chain = absorbing_failure_chain(lam)
        for t in (0.0, 0.1, 1.0, 5.0):
            absorbed = chain.absorption_probability_by({"working": 1.0}, "failed", t)
            assert absorbed == pytest.approx(1 - math.exp(-lam * t), abs=1e-10)

    def test_distribution_sums_to_one(self):
        chain = repairable_chain(2.0, 3.0)
        dist = chain.transient_distribution({"up": 1.0}, 0.8)
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-9)

    def test_two_state_closed_form(self):
        """P(down at t | up at 0) = (lam/(lam+mu)) (1 - e^(-(lam+mu)t))."""
        lam, mu, t = 0.5, 1.5, 0.9
        chain = repairable_chain(lam, mu)
        down = chain.transient_distribution({"up": 1.0}, t)["down"]
        expected = lam / (lam + mu) * (1 - math.exp(-(lam + mu) * t))
        assert down == pytest.approx(expected, abs=1e-10)

    def test_time_zero_is_initial(self):
        dist = repairable_chain(1.0, 1.0).transient_distribution({"up": 1.0}, 0.0)
        assert dist == {"up": 1.0, "down": 0.0}

    def test_long_time_approaches_steady_state(self):
        chain = repairable_chain(1.0, 4.0)
        late = chain.transient_distribution({"up": 1.0}, 100.0)
        steady = chain.steady_state()
        assert late["down"] == pytest.approx(steady["down"], abs=1e-8)

    def test_negative_time_rejected(self):
        with pytest.raises(MarkovError):
            repairable_chain(1.0, 1.0).transient_distribution({"up": 1.0}, -1.0)

    def test_bad_initial_rejected(self):
        with pytest.raises(InvalidDistributionError):
            repairable_chain(1.0, 1.0).transient_distribution({"up": 0.5}, 1.0)

    def test_absorption_by_requires_absorbing_target(self):
        with pytest.raises(MarkovError):
            repairable_chain(1.0, 1.0).absorption_probability_by(
                {"up": 1.0}, "down", 1.0
            )


class TestLongRun:
    def test_steady_state_availability(self):
        lam, mu = 1e-3, 1e-1
        steady = repairable_chain(lam, mu).steady_state()
        assert steady["up"] == pytest.approx(mu / (lam + mu), rel=1e-9)

    def test_steady_state_requires_irreducible(self):
        with pytest.raises(MarkovError):
            absorbing_failure_chain(1.0).steady_state()

    def test_mean_time_to_absorption_is_mttf(self):
        lam = 0.25
        chain = absorbing_failure_chain(lam)
        assert chain.mean_time_to_absorption({"working": 1.0}) == pytest.approx(
            1 / lam
        )

    def test_mtta_with_detour(self):
        """a -> b -> absorbed, each at rate r: E[T] = 2/r."""
        r = 2.0
        chain = ContinuousTimeMarkovChain(
            ("a", "b", "done"),
            np.array([
                [-r, r, 0.0],
                [0.0, -r, r],
                [0.0, 0.0, 0.0],
            ]),
        )
        assert chain.mean_time_to_absorption({"a": 1.0}) == pytest.approx(2 / r)

    def test_mtta_requires_absorbing_state(self):
        with pytest.raises(MarkovError):
            repairable_chain(1.0, 1.0).mean_time_to_absorption({"up": 1.0})
