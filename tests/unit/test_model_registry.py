"""Unit tests for the service registry (SOC discovery)."""

import pytest

from repro.errors import DuplicateNameError, ModelError, UnknownServiceError
from repro.model import (
    AttributeConstraint,
    CpuResource,
    ServiceRegistry,
)
from repro.scenarios import build_sort_component


def registry_with_sorts() -> ServiceRegistry:
    registry = ServiceRegistry()
    registry.publish(build_sort_component("sort_fast", 5e-6), "sort", provider="acme")
    registry.publish(build_sort_component("sort_safe", 1e-7), "sort", provider="initech")
    registry.publish(CpuResource("cpu_a", 1e6, 1e-7).service(), "compute")
    return registry


class TestPublish:
    def test_publish_and_lookup(self):
        registry = registry_with_sorts()
        entry = registry.lookup("sort_fast")
        assert entry.category == "sort"
        assert entry.provider == "acme"

    def test_duplicate_name_rejected(self):
        registry = registry_with_sorts()
        with pytest.raises(DuplicateNameError):
            registry.publish(build_sort_component("sort_fast", 1e-6), "sort")

    def test_empty_category_rejected(self):
        with pytest.raises(ModelError):
            ServiceRegistry().publish(CpuResource("c", 1.0, 0.0).service(), "")

    def test_withdraw(self):
        registry = registry_with_sorts()
        registry.withdraw("sort_fast")
        assert "sort_fast" not in registry
        with pytest.raises(UnknownServiceError):
            registry.lookup("sort_fast")

    def test_withdraw_unknown_raises(self):
        with pytest.raises(UnknownServiceError):
            ServiceRegistry().withdraw("ghost")

    def test_len_and_contains(self):
        registry = registry_with_sorts()
        assert len(registry) == 3
        assert "sort_safe" in registry


class TestDiscover:
    def test_by_category(self):
        registry = registry_with_sorts()
        names = {e.service.name for e in registry.discover("sort")}
        assert names == {"sort_fast", "sort_safe"}

    def test_unknown_category_is_empty(self):
        assert registry_with_sorts().discover("storage") == []

    def test_constraint_filters_by_attribute(self):
        registry = registry_with_sorts()
        constraint = AttributeConstraint("software_failure_rate", maximum=1e-6)
        names = {e.service.name for e in registry.discover("sort", (constraint,))}
        assert names == {"sort_safe"}

    def test_constraint_requires_attribute_presence(self):
        registry = registry_with_sorts()
        constraint = AttributeConstraint("bandwidth", minimum=0.0)
        assert registry.discover("sort", (constraint,)) == []

    def test_minimum_bound(self):
        registry = registry_with_sorts()
        constraint = AttributeConstraint("software_failure_rate", minimum=1e-6)
        names = {e.service.name for e in registry.discover("sort", (constraint,))}
        assert names == {"sort_fast"}

    def test_sorted_by_key(self):
        registry = registry_with_sorts()
        ordered = registry.discover(
            "sort",
            key=lambda e: e.service.interface.attributes["software_failure_rate"],
        )
        assert [e.service.name for e in ordered] == ["sort_safe", "sort_fast"]

    def test_categories(self):
        assert registry_with_sorts().categories() == {"sort", "compute"}
