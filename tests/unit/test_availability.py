"""Unit tests for the availability (repair) extension."""

import math

import pytest

from repro.core import ReliabilityEvaluator, SymbolicEvaluator
from repro.errors import ModelError
from repro.model import Assembly, CpuResource, perfect_connector
from repro.model.connector import SimpleConnector
from repro.reliability import SteadyStateAvailability, with_availability
from repro.scenarios import SearchSortParameters, local_assembly
from repro.simulation import MonteCarloSimulator


class TestSteadyStateAvailability:
    def test_availability_formula(self):
        model = SteadyStateAvailability(failure_rate=2.0, repair_rate=8.0)
        assert model.availability == pytest.approx(0.8)
        assert model.unavailability == pytest.approx(0.2)

    def test_matches_ctmc_steady_state(self):
        model = SteadyStateAvailability(failure_rate=1e-2, repair_rate=0.5)
        steady = model.chain().steady_state()
        assert steady["working"] == pytest.approx(model.availability, rel=1e-9)

    def test_mttf_mttr(self):
        model = SteadyStateAvailability(failure_rate=0.1, repair_rate=2.0)
        assert model.mttf == pytest.approx(10.0)
        assert model.mttr == pytest.approx(0.5)

    def test_perfect_resource_mttf_infinite(self):
        assert SteadyStateAvailability(0.0, 1.0).mttf == math.inf
        assert SteadyStateAvailability(0.0, 1.0).availability == 1.0

    def test_zero_repair_rate_rejected(self):
        with pytest.raises(ModelError):
            SteadyStateAvailability(0.1, 0.0)

    def test_negative_failure_rate_rejected(self):
        with pytest.raises(ModelError):
            SteadyStateAvailability(-0.1, 1.0)


class TestWithAvailability:
    def make_cpu(self):
        return CpuResource("cpu1", speed=1e6, failure_rate=1e-6).service()

    def test_composition_formula(self):
        """Pfail' = (1-A) + A * Pfail at every workload."""
        cpu = self.make_cpu()
        model = SteadyStateAvailability(1e-3, 1e-1)
        wrapped = with_availability(cpu, model)
        a = model.availability
        for n in (0, 100, 1e6):
            assert wrapped.pfail(N=n) == pytest.approx(
                (1 - a) + a * cpu.pfail(N=n), rel=1e-12
            )

    def test_zero_workload_fails_with_unavailability(self):
        model = SteadyStateAvailability(1e-3, 1e-1)
        wrapped = with_availability(self.make_cpu(), model)
        assert wrapped.pfail(N=0) == pytest.approx(model.unavailability)

    def test_bare_float_availability(self):
        wrapped = with_availability(self.make_cpu(), 0.99)
        assert wrapped.pfail(N=0) == pytest.approx(0.01)

    def test_availability_one_is_identity(self):
        cpu = self.make_cpu()
        wrapped = with_availability(cpu, 1.0)
        assert wrapped.pfail(N=1e5) == pytest.approx(cpu.pfail(N=1e5), rel=1e-12)

    def test_out_of_range_availability_rejected(self):
        with pytest.raises(ModelError):
            with_availability(self.make_cpu(), 0.0)
        with pytest.raises(ModelError):
            with_availability(self.make_cpu(), 1.2)

    def test_name_and_attributes(self):
        wrapped = with_availability(self.make_cpu(), 0.95, name="cpu1_ha")
        assert wrapped.name == "cpu1_ha"
        assert wrapped.interface.attributes["availability"] == 0.95
        # original attributes preserved so the published expression evaluates
        assert wrapped.interface.attributes["speed"] == 1e6

    def test_connector_subclass_preserved(self):
        loc = perfect_connector("loc1")
        wrapped = with_availability(loc, 0.999)
        assert isinstance(wrapped, SimpleConnector)
        assert wrapped.is_connector


class TestAvailabilityInAssemblies:
    def build(self, availability: float) -> Assembly:
        """The local search/sort assembly with a repairable cpu1."""
        params = SearchSortParameters()
        base = local_assembly(params)
        assembly = Assembly(f"local-avail-{availability}")
        for service in base.services:
            if service.name == "cpu1":
                assembly.add_service(
                    with_availability(service, availability, name="cpu1")
                )
            else:
                assembly.add_service(service)
        for binding in base.bindings:
            assembly.bind(
                binding.consumer, binding.slot, binding.provider,
                connector=binding.connector,
                connector_actuals=dict(binding.connector_actuals),
            )
        return assembly

    def test_lower_availability_lowers_reliability(self):
        high = ReliabilityEvaluator(self.build(0.9999)).pfail(
            "search", elem=1, list=100, res=1
        )
        low = ReliabilityEvaluator(self.build(0.99)).pfail(
            "search", elem=1, list=100, res=1
        )
        baseline = ReliabilityEvaluator(local_assembly()).pfail(
            "search", elem=1, list=100, res=1
        )
        assert baseline < high < low

    def test_symbolic_and_simulation_agree(self):
        assembly = self.build(0.99)
        numeric = ReliabilityEvaluator(assembly).pfail(
            "search", elem=1, list=100, res=1
        )
        expression = SymbolicEvaluator(assembly).pfail_expression("search")
        assert expression.evaluate(
            {"elem": 1.0, "list": 100.0, "res": 1.0}
        ) == pytest.approx(numeric, rel=1e-9)
        simulated = MonteCarloSimulator(assembly, seed=21).estimate_pfail(
            "search", 20_000, elem=1, list=100, res=1
        )
        assert simulated.consistent_with(numeric)
