"""Unit tests for stationary / long-run analysis."""

import numpy as np
import pytest

from repro.errors import MarkovError
from repro.markov import (
    DiscreteTimeMarkovChain,
    is_irreducible,
    mean_first_passage_time,
    stationary_distribution,
)


def ring_chain() -> DiscreteTimeMarkovChain:
    return DiscreteTimeMarkovChain(
        ["a", "b", "c"],
        np.array([
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 0.0],
        ]),
    )


def lazy_two_state(p: float, q: float) -> DiscreteTimeMarkovChain:
    return DiscreteTimeMarkovChain(
        ["a", "b"], np.array([[1 - p, p], [q, 1 - q]])
    )


class TestIrreducibility:
    def test_ring_is_irreducible(self):
        assert is_irreducible(ring_chain())

    def test_absorbing_chain_is_reducible(self):
        chain = DiscreteTimeMarkovChain(
            ["a", "b"], np.array([[0.5, 0.5], [0.0, 1.0]])
        )
        assert not is_irreducible(chain)


class TestStationaryDistribution:
    def test_uniform_on_ring(self):
        pi = stationary_distribution(ring_chain())
        for value in pi.values():
            assert value == pytest.approx(1 / 3)

    def test_two_state_closed_form(self):
        """pi = (q, p) / (p + q) for the lazy two-state chain."""
        p, q = 0.2, 0.3
        pi = stationary_distribution(lazy_two_state(p, q))
        assert pi["a"] == pytest.approx(q / (p + q))
        assert pi["b"] == pytest.approx(p / (p + q))

    def test_is_invariant_under_step(self):
        chain = lazy_two_state(0.4, 0.1)
        pi = stationary_distribution(chain)
        stepped = chain.step_distribution(pi, steps=1)
        for state in pi:
            assert stepped[state] == pytest.approx(pi[state])

    def test_reducible_chain_rejected(self):
        chain = DiscreteTimeMarkovChain(
            ["a", "b"], np.array([[1.0, 0.0], [0.5, 0.5]])
        )
        with pytest.raises(MarkovError):
            stationary_distribution(chain)


class TestMeanFirstPassage:
    def test_deterministic_ring(self):
        assert mean_first_passage_time(ring_chain(), "a", "c") == pytest.approx(2.0)

    def test_self_passage_is_zero(self):
        assert mean_first_passage_time(ring_chain(), "a", "a") == 0.0

    def test_two_state_closed_form(self):
        """E[a -> b] = 1/p for the lazy two-state chain."""
        p = 0.25
        chain = lazy_two_state(p, 0.5)
        assert mean_first_passage_time(chain, "a", "b") == pytest.approx(1 / p)

    def test_unreachable_target_rejected(self):
        chain = DiscreteTimeMarkovChain(
            ["a", "b"], np.array([[1.0, 0.0], [0.5, 0.5]])
        )
        with pytest.raises(MarkovError):
            mean_first_passage_time(chain, "a", "b")

    def test_conditional_passage_with_escape(self):
        """a -> b w.p. 0.5, a -> trap w.p. 0.5: conditional on reaching b,
        it takes exactly one step."""
        chain = DiscreteTimeMarkovChain(
            ["a", "b", "trap"],
            np.array([
                [0.0, 0.5, 0.5],
                [1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0],
            ]),
        )
        assert mean_first_passage_time(chain, "a", "b") == pytest.approx(1.0)
