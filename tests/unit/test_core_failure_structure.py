"""Unit tests for the failure-structure augmentation (Figure 5)."""

import pytest

from repro.core import augment_with_failures
from repro.errors import InvalidFlowError, ProbabilityRangeError
from repro.markov import AbsorbingChainAnalysis
from repro.model import FlowBuilder, ServiceRequest
from repro.symbolic import Environment, Parameter


def search_like_flow():
    """Start -q-> sort -> search -> End; Start -(1-q)-> search (Figure 1)."""
    return (
        FlowBuilder(formals=("q",))
        .state("sort", [ServiceRequest("sort", actuals={"list": 1})])
        .state("search", [ServiceRequest("cpu", actuals={"N": 1})])
        .transition("Start", "sort", Parameter("q"))
        .transition("Start", "search", 1 - Parameter("q"))
        .transition("sort", "search", 1)
        .transition("search", "End", 1)
        .build()
    )


class TestAugmentation:
    def test_figure_5_structure(self):
        chain = augment_with_failures(
            search_like_flow(), Environment(q=0.5),
            {"sort": 0.1, "search": 0.2},
        )
        assert set(chain.states) == {"Start", "sort", "search", "End", "Fail"}
        assert chain.is_absorbing_state("End")
        assert chain.is_absorbing_state("Fail")
        # reweighting: sort -> search carries (1 - 0.1)
        assert chain.probability("sort", "search") == pytest.approx(0.9)
        assert chain.probability("sort", "Fail") == pytest.approx(0.1)
        assert chain.probability("search", "Fail") == pytest.approx(0.2)

    def test_start_has_no_fail_edge(self):
        """No failure can occur in Start (paper assumption)."""
        chain = augment_with_failures(
            search_like_flow(), Environment(q=0.5),
            {"sort": 0.5, "search": 0.5},
        )
        assert chain.probability("Start", "Fail") == 0.0
        assert chain.probability("Start", "sort") == pytest.approx(0.5)

    def test_absorption_matches_hand_computation(self):
        q, f1, f2 = 0.4, 0.1, 0.2
        chain = augment_with_failures(
            search_like_flow(), Environment(q=q), {"sort": f1, "search": f2}
        )
        analysis = AbsorbingChainAnalysis(chain)
        expected_success = q * (1 - f1) * (1 - f2) + (1 - q) * (1 - f2)
        assert analysis.absorption_probability("Start", "End") == pytest.approx(
            expected_success
        )

    def test_zero_failures_reach_end_certainly(self):
        chain = augment_with_failures(
            search_like_flow(), Environment(q=0.3), {"sort": 0.0, "search": 0.0}
        )
        analysis = AbsorbingChainAnalysis(chain)
        assert analysis.absorption_probability("Start", "End") == pytest.approx(1.0)

    def test_certain_failure_never_reaches_end(self):
        chain = augment_with_failures(
            search_like_flow(), Environment(q=0.3), {"sort": 1.0, "search": 1.0}
        )
        analysis = AbsorbingChainAnalysis(chain)
        assert analysis.absorption_probability("Start", "End") == pytest.approx(0.0)


class TestValidation:
    def test_unknown_state_rejected(self):
        with pytest.raises(InvalidFlowError):
            augment_with_failures(
                search_like_flow(), Environment(q=0.5),
                {"sort": 0.1, "search": 0.1, "ghost": 0.1},
            )

    def test_missing_state_rejected(self):
        with pytest.raises(InvalidFlowError):
            augment_with_failures(
                search_like_flow(), Environment(q=0.5), {"sort": 0.1}
            )

    def test_out_of_range_failure_rejected(self):
        with pytest.raises(ProbabilityRangeError):
            augment_with_failures(
                search_like_flow(), Environment(q=0.5),
                {"sort": 1.5, "search": 0.0},
            )

    def test_bad_transition_probabilities_rejected(self):
        with pytest.raises(InvalidFlowError):
            augment_with_failures(
                search_like_flow(), Environment(q=1.7),
                {"sort": 0.0, "search": 0.0},
            )
