"""Unit tests for algebraic simplification."""

import pytest

from repro.symbolic import Binary, Call, Constant, Parameter, Unary, simplify

X = Parameter("x")
Y = Parameter("y")


class TestConstantFolding:
    def test_fold_addition(self):
        assert simplify(Constant(2.0) + Constant(3.0)) == Constant(5.0)

    def test_fold_nested(self):
        expr = (Constant(2.0) + Constant(3.0)) * (Constant(4.0) - Constant(2.0))
        assert simplify(expr) == Constant(10.0)

    def test_fold_function_of_constants(self):
        assert simplify(Call("log2", (Constant(8.0),))) == Constant(3.0)

    def test_fold_unary(self):
        assert simplify(Unary(Constant(4.0))) == Constant(-4.0)


class TestIdentities:
    def test_add_zero_right(self):
        assert simplify(X + 0) == X

    def test_add_zero_left(self):
        assert simplify(0 + X) == X

    def test_sub_zero(self):
        assert simplify(X - 0) == X

    def test_zero_sub(self):
        assert simplify(0 - X) == Unary(X)

    def test_self_sub(self):
        assert simplify(X - X) == Constant(0.0)

    def test_mul_one(self):
        assert simplify(X * 1) == X
        assert simplify(1 * X) == X

    def test_mul_zero(self):
        assert simplify(X * 0) == Constant(0.0)
        assert simplify(0 * X) == Constant(0.0)

    def test_div_one(self):
        assert simplify(X / 1) == X

    def test_zero_div(self):
        assert simplify(0 / X) == Constant(0.0)

    def test_self_div(self):
        assert simplify(X / X) == Constant(1.0)

    def test_pow_one(self):
        assert simplify(X ** 1) == X

    def test_pow_zero(self):
        assert simplify(X ** 0) == Constant(1.0)

    def test_one_pow(self):
        assert simplify(Constant(1.0) ** X) == Constant(1.0)

    def test_double_negation(self):
        assert simplify(Unary(Unary(X))) == X


class TestReliabilityPatterns:
    def test_one_minus_one_minus_x(self):
        """The ubiquitous survival/failure complement collapses."""
        assert simplify(1 - (1 - X)) == X

    def test_constant_minus_sum(self):
        assert simplify(1 - (1 + X)) == Unary(X)

    def test_exp_product_merges(self):
        """exp(a) * exp(b) -> exp(a + b): the eq. (20)/(22) collapse."""
        expr = Call("exp", (X,)) * Call("exp", (Y,))
        assert simplify(expr) == Call("exp", (Binary("+", X, Y),))

    def test_exp_log_cancels(self):
        assert simplify(Call("exp", (Call("log", (X,)),))) == X

    def test_log_exp_cancels(self):
        assert simplify(Call("log", (Call("exp", (X,)),))) == X

    def test_constant_coefficients_fold(self):
        assert simplify(Constant(2.0) * (Constant(3.0) * X)) == simplify(Constant(6.0) * X)


class TestSemanticsPreservation:
    @pytest.mark.parametrize(
        "expr",
        [
            (1 - (1 - X)) * (1 - Constant(0.0)),
            (X + 0) * (Y * 1) - 0,
            Call("exp", (X * 2,)) * Call("exp", (Y / 2,)),
            (X - X) + (Y ** 1),
            Constant(2.0) * (Constant(0.5) * (X + Y)),
        ],
    )
    def test_simplified_evaluates_identically(self, expr):
        env = {"x": 0.37, "y": 1.21}
        assert simplify(expr).evaluate(env) == pytest.approx(
            expr.evaluate(env), rel=0, abs=1e-15
        )

    def test_idempotent(self):
        expr = 1 - (1 - X * 1) * (1 - Constant(0.0))
        once = simplify(expr)
        assert simplify(once) == once
