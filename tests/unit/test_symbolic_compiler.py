"""Unit tests for the symbolic kernel compiler.

Covers the lowering pipeline (CSE by hash-consing, finite-only constant
folding, tape emission), the equivalence contract against the tree walk,
kernel-cache behavior (structural keying, statistics, eviction), buffer
hygiene across calls and threads, and the engine-plan integration.
"""

import pickle
import threading

import numpy as np
import pytest

from repro.caching import LRUCache
from repro.errors import EvaluationError, UnboundParameterError
from repro.scenarios import local_assembly, remote_assembly
from repro.symbolic import (
    Binary,
    Call,
    Constant,
    KernelCache,
    Parameter,
    compile_expression,
    default_kernel_cache,
    gradient_kernels,
    kernel_cache_stats,
    reset_default_kernel_cache,
)

X = Parameter("x")
Y = Parameter("y")


@pytest.fixture(autouse=True)
def fresh_default_cache():
    reset_default_kernel_cache()
    yield
    reset_default_kernel_cache()


def sort_closed_form():
    """The eq. 18 shape: composition by substitution duplicates N."""
    lst = Parameter("list")
    n = lst * Call("log2", (lst,))
    cpu = Parameter("cpu")
    inner = 1.0 - (1.0 - cpu) ** n
    return 1.0 - (1.0 - inner) * (1.0 - inner) * (1.0 - cpu) ** (n * n)


class TestLowering:
    def test_scalar_matches_tree_walk_exactly(self):
        expr = sort_closed_form()
        kernel = compile_expression(expr, cache=False)
        env = {"list": 37.0, "cpu": 3e-4}
        assert kernel.evaluate(env) == expr.evaluate(env)

    def test_array_matches_tree_walk_bitwise(self):
        expr = sort_closed_form()
        kernel = compile_expression(expr, cache=False)
        env = {"list": np.linspace(1.0, 300.0, 64), "cpu": 3e-4}
        assert np.array_equal(kernel.evaluate(env), expr.evaluate(env))

    def test_cse_collapses_duplicated_subtrees(self):
        expr = sort_closed_form()
        kernel = compile_expression(expr, cache=False)
        # the tree repeats N = list*log2(list) four times; the DAG holds it once
        assert kernel.op_count < kernel.tree_nodes
        assert kernel.dag_nodes < kernel.tree_nodes
        assert kernel.tree_nodes == expr.node_count()

    def test_shared_subexpression_computed_once(self):
        # (x+y) appears twice in the tree but once in the tape
        shared = X + Y
        expr = shared * shared
        kernel = compile_expression(expr, cache=False)
        assert kernel.op_count == 2  # one add, one multiply

    def test_constant_folding(self):
        expr = (Constant(2.0) + Constant(3.0)) * X
        kernel = compile_expression(expr, cache=False)
        assert kernel.folded == 1
        assert kernel.op_count == 1  # only the multiply survives
        assert kernel.evaluate({"x": 4.0}) == 20.0

    def test_nonfinite_folds_stay_in_the_tape(self):
        # 1/0 must not fold: the tree walk produces the inf (and its
        # RuntimeWarning) at evaluation time, so the kernel must too
        expr = Constant(1.0) / Constant(0.0) + X
        kernel = compile_expression(expr, cache=False)
        assert kernel.folded == 0
        with np.errstate(all="ignore"):
            assert kernel.evaluate({"x": 1.0}) == expr.evaluate({"x": 1.0})

    def test_unbound_parameter_raises_like_the_tree(self):
        kernel = compile_expression(X + Y, cache=False)
        with pytest.raises(UnboundParameterError):
            kernel.evaluate({"x": 1.0})
        with pytest.raises(UnboundParameterError):
            kernel.evaluate(None)

    def test_extra_bindings_are_ignored(self):
        kernel = compile_expression(X + 1.0, cache=False)
        assert kernel.evaluate({"x": 1.0, "unused": 99.0}) == 2.0

    def test_guarded_log_edges_match(self):
        expr = Call("log", (X,)) + Call("log2", (X,))
        kernel = compile_expression(expr, cache=False)
        edge = {"x": np.array([0.0, -2.0, 1.0, 8.0])}
        assert np.array_equal(kernel.evaluate(edge), expr.evaluate(edge))

    def test_deep_chain_does_not_hit_recursion_limit(self):
        expr = X
        for _ in range(4000):
            expr = expr + 1.0
        kernel = compile_expression(expr, cache=False)
        assert kernel.evaluate({"x": 0.0}) == 4000.0

    def test_parameters_in_first_use_order(self):
        kernel = compile_expression(Y + X + Y, cache=False)
        assert kernel.parameters == ("y", "x")

    def test_describe_lists_the_tape(self):
        kernel = compile_expression(X * X + 1.0, cache=False)
        text = kernel.describe()
        assert "param x" in text
        assert "return" in text


class TestBufferHygiene:
    def test_result_does_not_alias_across_calls(self):
        kernel = compile_expression(X * 2.0, cache=False)
        first = kernel.evaluate({"x": np.array([1.0, 2.0])})
        second = kernel.evaluate({"x": np.array([5.0, 6.0])})
        assert np.array_equal(first, [2.0, 4.0])  # not clobbered
        assert np.array_equal(second, [10.0, 12.0])

    def test_scalar_after_array_and_back(self):
        kernel = compile_expression(X * 2.0 + Y, cache=False)
        assert kernel.evaluate({"x": 1.0, "y": 1.0}) == 3.0
        arr = kernel.evaluate({"x": np.array([1.0, 2.0]), "y": 1.0})
        assert np.array_equal(arr, [3.0, 5.0])
        assert kernel.evaluate({"x": 2.0, "y": 0.0}) == 4.0

    def test_changing_grid_shapes_reallocate(self):
        kernel = compile_expression(X + Y, cache=False)
        a = kernel.evaluate({"x": np.ones(3), "y": 1.0})
        b = kernel.evaluate({"x": np.ones(5), "y": 1.0})
        assert a.shape == (3,) and b.shape == (5,)

    def test_concurrent_evaluation_from_threads(self):
        expr = sort_closed_form()
        kernel = compile_expression(expr, cache=False)
        grids = [np.linspace(1.0 + i, 200.0 + i, 97) for i in range(4)]
        expected = [
            expr.evaluate({"list": g, "cpu": 3e-4}) for g in grids
        ]
        results: dict[int, np.ndarray] = {}

        def work(i: int) -> None:
            for _ in range(50):
                results[i] = kernel.evaluate({"list": grids[i], "cpu": 3e-4})

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(4):
            assert np.array_equal(results[i], expected[i])


class TestKernelCache:
    def test_structurally_equal_trees_share_a_kernel(self):
        cache = KernelCache()
        k1 = cache.get_or_compile(sort_closed_form())
        k2 = cache.get_or_compile(sort_closed_form())
        assert k1 is k2
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_default_cache_and_stats_snapshot(self):
        compile_expression(X + 1.0)
        compile_expression(X + 1.0)
        stats = kernel_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert len(default_kernel_cache()) == 1

    def test_cache_false_compiles_fresh(self):
        k1 = compile_expression(X + 1.0, cache=False)
        k2 = compile_expression(X + 1.0, cache=False)
        assert k1 is not k2
        assert len(default_kernel_cache()) == 0

    def test_lru_eviction_past_bound(self):
        cache = KernelCache(max_size=2)
        for i in range(4):
            cache.get_or_compile(X + float(i))
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_clear_keeps_statistics(self):
        cache = KernelCache()
        cache.get_or_compile(X)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(EvaluationError):
            KernelCache(max_size=0)


class TestGradientKernels:
    def test_matches_symbolic_derivative(self):
        expr = sort_closed_form()
        kernels = gradient_kernels(expr, ("list", "cpu"))
        env = {"list": 50.0, "cpu": 1e-3}
        for name in ("list", "cpu"):
            assert kernels[name].evaluate(env) == (
                expr.differentiate(name).evaluate(env)
            )

    def test_derivatives_memoized_across_calls(self):
        expr = sort_closed_form()
        a = gradient_kernels(expr, ("list",))
        b = gradient_kernels(expr, ("list",))
        assert a["list"] is b["list"]


class TestSharedLRUCache:
    def test_get_does_not_touch_stats(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.stats.lookups == 0

    def test_get_or_create_counts_and_recency(self):
        cache = LRUCache(max_size=2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: 0)  # hit refreshes recency
        cache.put("c", 3)  # evicts b, the least recent
        assert cache.get("b") is None and cache.get("a") == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 2


class TestPlanIntegration:
    def test_plan_pfail_kernel_matches_tree_walk(self):
        from repro.engine.plan import compile_plan

        plan = compile_plan(local_assembly(), "search")
        point = {"elem": 1.0, "list": 500.0, "res": 1.0}
        assert plan.pfail(point) == plan.pfail(point, use_kernel=False)

    def test_plan_grid_kernel_matches_tree_walk(self):
        from repro.engine.plan import compile_plan

        plan = compile_plan(remote_assembly(), "search")
        grid = np.linspace(1.0, 1000.0, 37)
        fixed = {"elem": 1.0, "res": 1.0}
        assert np.array_equal(
            plan.pfail_grid("list", grid, fixed),
            plan.pfail_grid("list", grid, fixed, use_kernel=False),
        )

    def test_pickled_plan_drops_and_rebuilds_kernel(self):
        from repro.engine.plan import compile_plan

        plan = compile_plan(local_assembly(), "search")
        plan.kernel()  # force compilation
        clone = pickle.loads(pickle.dumps(plan))
        assert clone._kernel_obj is None
        point = {"elem": 1.0, "list": 500.0, "res": 1.0}
        assert clone.pfail(point) == plan.pfail(point)

    def test_symbolic_evaluator_memoizes_kernels(self):
        from repro.core.symbolic_evaluator import SymbolicEvaluator

        evaluator = SymbolicEvaluator(local_assembly())
        k1 = evaluator.pfail_kernel("search")
        k2 = evaluator.pfail_kernel("search")
        assert k1 is k2
        env = {"elem": 1.0, "list": 500.0, "res": 1.0}
        assert k1.evaluate(env) == (
            evaluator.pfail_expression("search").evaluate(env)
        )

    def test_robust_plan_has_no_kernel(self):
        from repro.engine.plan import compile_plan

        plan = compile_plan(local_assembly(), "search", backend="robust")
        assert plan.kernel() is None
