"""Unit tests for :mod:`repro.observability` — metrics, tracing, hooks,
facade, and the cross-process merge paths the worker pool relies on."""

import json
import threading

import pytest

from repro import observability as obs
from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    SummarySink,
    Tracer,
)
from repro.observability.tracing import NO_SPAN


@pytest.fixture(autouse=True)
def _pristine_observability():
    obs.reset()
    yield
    obs.reset()


# -- metrics primitives -----------------------------------------------------


class TestCounter:
    def test_monotone_increment(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0

    def test_thread_safety(self):
        counter = Counter()
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1_000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8_000


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.add(1.5)
        assert gauge.value == 5.0


class TestHistogram:
    def test_exact_moments(self):
        hist = Histogram("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["mean"] == 2.5

    def test_empty_snapshot(self):
        assert Histogram("t").snapshot() == {"count": 0, "sum": 0.0}

    def test_reservoir_is_bounded(self):
        hist = Histogram("t", max_samples=16)
        for v in range(1_000):
            hist.observe(float(v))
        snap = hist.snapshot()
        assert snap["count"] == 1_000
        assert snap["samples_kept"] == 16
        assert snap["min"] == 0.0 and snap["max"] == 999.0

    def test_reservoir_deterministic_per_name(self):
        a, b = Histogram("same"), Histogram("same")
        for v in range(2_000):
            a.observe(float(v))
            b.observe(float(v))
        assert a.snapshot() == b.snapshot()

    def test_quantile(self):
        hist = Histogram("t")
        for v in range(101):
            hist.observe(float(v))
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 100.0
        assert 40.0 <= hist.quantile(0.5) <= 60.0


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert len(registry) == 3

    def test_snapshot_schema_and_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snap = registry.snapshot()
        assert snap["schema"] == "repro/metrics/1"
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert json.loads(registry.to_json()) == snap

    def test_merge_adds_counters_overwrites_gauges(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("c").inc(3)
        worker.counter("c").inc(4)
        worker.gauge("g").set(9.0)
        worker.histogram("h").observe(1.0)
        worker.histogram("h").observe(3.0)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["c"] == 7
        assert snap["gauges"]["g"] == 9.0
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["sum"] == 4.0

    def test_merge_histograms_from_two_workers(self):
        parent = MetricsRegistry()
        for low, high in ((1.0, 2.0), (10.0, 20.0)):
            worker = MetricsRegistry()
            worker.histogram("h").observe(low)
            worker.histogram("h").observe(high)
            parent.merge(worker.snapshot())
        merged = parent.snapshot()["histograms"]["h"]
        assert merged["count"] == 4
        assert merged["min"] == 1.0 and merged["max"] == 20.0
        assert merged["sum"] == 33.0


# -- tracing ----------------------------------------------------------------


class TestTracer:
    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        assert all(s.status == "ok" for s in tracer.finished)
        assert tracer.current() is None

    def test_error_span_records_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.status == "error"
        assert span.error == "RuntimeError: boom"

    def test_tags_at_open_and_set_tag(self):
        tracer = Tracer()
        with tracer.span("work", phase="a") as span:
            span.set_tag(result="ok", phase="b")
        assert tracer.finished[0].tags == {"phase": "b", "result": "ok"}

    def test_bounded_retention_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.dropped == 3

    def test_export_round_trips_through_dicts(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", k=1):
                pass
        records = tracer.export()
        assert {r["name"] for r in records} == {"inner", "outer"}
        assert all("wall" in r and "span_id" in r for r in records)

    def test_merge_reparents_worker_roots(self):
        worker = Tracer()
        with worker.span("worker.outer"):
            with worker.span("worker.inner"):
                pass
        records = worker.export()

        parent = Tracer()
        with parent.span("dispatch") as dispatch:
            adopted = parent.merge(records)
        assert adopted == 2
        by_name = {s.name: s for s in parent.finished}
        # the worker's root now hangs off the dispatching span ...
        assert by_name["worker.outer"].parent_id == dispatch.span_id
        # ... while intra-worker nesting is preserved
        assert (
            by_name["worker.inner"].parent_id
            == by_name["worker.outer"].span_id
        )

    def test_merge_without_open_span_keeps_roots(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        parent.merge(worker.export())
        assert parent.finished[0].parent_id is None

    def test_span_ids_unique_and_pid_prefixed(self):
        import os

        tracer = Tracer()
        with tracer.span("a"), tracer.span("b"):
            pass
        ids = [s.span_id for s in tracer.finished]
        assert len(set(ids)) == 2
        assert all(i.startswith(f"{os.getpid()}-") for i in ids)


# -- hooks ------------------------------------------------------------------


class TestHooks:
    def test_in_memory_sink_balance(self):
        sink = InMemorySink()
        tracer = Tracer(hooks=[sink])
        with tracer.span("a"):
            assert sink.open_spans == 1
            with tracer.span("b"):
                pass
        assert sink.open_spans == 0
        assert [s.name for s in sink.spans] == ["b", "a"]

    def test_jsonl_sink_writes_one_line_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer(hooks=[sink])
        with tracer.span("a", k=1):
            pass
        with tracer.span("b"):
            pass
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in lines] == ["a", "b"]
        assert lines[0]["tags"] == {"k": 1}
        assert sink.write_errors == 0

    def test_jsonl_sink_swallows_io_errors(self):
        sink = JsonlSink("/nonexistent-dir/trace.jsonl")
        tracer = Tracer(hooks=[sink])
        with tracer.span("a"):
            pass
        assert sink.write_errors == 1

    def test_summary_sink_table(self):
        sink = SummarySink()
        tracer = Tracer(hooks=[sink])
        with tracer.span("work"):
            pass
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("x")
        row = sink.rows["work"]
        assert row["count"] == 2 and row["errors"] == 1
        assert "work" in sink.render()

    def test_summary_sink_merges_exported_records(self):
        tracer = Tracer()
        with tracer.span("remote"):
            pass
        sink = SummarySink()
        sink.merge_records(tracer.export())
        assert sink.rows["remote"]["count"] == 1

    def test_empty_summary_renders(self):
        assert "no spans" in SummarySink().render()


# -- the facade -------------------------------------------------------------


class TestFacade:
    def test_disabled_helpers_record_nothing(self):
        assert not obs.enabled()
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 1.0)
        assert obs.span("s") is NO_SPAN
        assert len(obs.registry()) == 0
        assert obs.tracer().finished == []

    def test_no_span_is_inert_context_manager(self):
        with obs.span("anything") as span:
            span.set_tag(whatever=1)
        assert span is NO_SPAN

    def test_enabled_helpers_record(self):
        obs.enable()
        obs.count("c", 2)
        obs.gauge("g", 4.5)
        obs.observe("h", 0.5)
        with obs.span("s", k=1):
            pass
        snap = obs.registry().snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 4.5}
        assert obs.tracer().finished[0].name == "s"

    def test_enable_is_idempotent_and_appends_hooks(self):
        sink = InMemorySink()
        registry, tracer = obs.enable(hooks=[sink])
        registry2, tracer2 = obs.enable(hooks=[sink])
        assert registry is registry2 and tracer is tracer2
        assert tracer.hooks.count(sink) == 1

    def test_disable_keeps_data_readable(self):
        obs.enable()
        obs.count("c")
        obs.disable()
        assert not obs.enabled()
        assert obs.registry().snapshot()["counters"] == {"c": 1}
        obs.count("c")  # no-op now
        assert obs.registry().snapshot()["counters"] == {"c": 1}

    def test_reset_forgets_everything(self):
        obs.enable()
        obs.count("c")
        obs.reset()
        assert not obs.enabled()
        assert len(obs.registry()) == 0


# -- worker payload shipping (the cross-process join) -----------------------


class TestWorkerObservation:
    def test_worker_scope_ships_and_parent_merges(self):
        from repro.engine.parallel import (
            _begin_worker_observation,
            _ship_worker_observation,
            unpack_worker_payload,
        )

        # "worker process": observability starts disabled there
        owned = _begin_worker_observation(
            {"observe": True, "dispatched_at": 0.0}
        )
        assert owned
        obs.count("cache.plan.hits", 3)
        with obs.span("worker.work"):
            pass
        wrapped = _ship_worker_observation(["r1", "r2"], owned)
        assert set(wrapped) == {"results", "metrics", "spans"}
        # shipping resets the worker scope for the next payload
        assert len(obs.registry()) == 0

        # "parent process": merge into an enabled scope
        obs.enable()
        with obs.span("dispatch"):
            results = unpack_worker_payload(wrapped)
        assert results == ["r1", "r2"]
        snap = obs.registry().snapshot()
        assert snap["counters"]["cache.plan.hits"] == 3
        assert "batch.queue.seconds" in snap["histograms"]
        assert "worker.work" in {s.name for s in obs.tracer().finished}

    def test_worker_scope_not_started_without_flag(self):
        from repro.engine.parallel import _begin_worker_observation

        assert not _begin_worker_observation({})
        assert not _begin_worker_observation({"observe": False})
        assert not obs.enabled()

    def test_thread_mode_does_not_clobber_parent_scope(self):
        from repro.engine.parallel import (
            _begin_worker_observation,
            _ship_worker_observation,
        )

        obs.enable()
        obs.count("pre.existing")
        # thread-pool worker: obs already enabled in-process -> no private
        # scope, results pass through unwrapped, parent data survives
        owned = _begin_worker_observation({"observe": True})
        assert not owned
        assert _ship_worker_observation([1.0], owned) == [1.0]
        assert obs.registry().snapshot()["counters"] == {"pre.existing": 1}

    def test_unpack_passes_plain_results_through(self):
        from repro.engine.parallel import unpack_worker_payload

        assert unpack_worker_payload([1.0, 2.0]) == [1.0, 2.0]
        failure_list = ["anything"]
        assert unpack_worker_payload(failure_list) is failure_list
