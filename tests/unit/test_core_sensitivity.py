"""Unit tests for sensitivity analysis."""

import pytest

from repro.core import (
    attribute_sensitivities,
    finite_difference_sensitivity,
    parameter_sensitivities,
)
from repro.scenarios import (
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)

ACTUALS = {"elem": 1.0, "list": 500.0, "res": 1.0}


class TestParameterSensitivities:
    def test_list_dominates(self):
        """Unreliability grows with the list size; elem/res barely matter
        in the local assembly."""
        results = parameter_sensitivities(local_assembly(), "search", ACTUALS)
        by_name = {r.name: r for r in results}
        assert by_name["list"].derivative > 0
        assert results[0].name == "list"

    def test_matches_finite_differences(self):
        assembly = local_assembly()
        results = parameter_sensitivities(assembly, "search", ACTUALS)
        by_name = {r.name: r for r in results}
        numeric = finite_difference_sensitivity(
            assembly, "search", ACTUALS, "list"
        )
        assert by_name["list"].derivative == pytest.approx(numeric, rel=1e-4)

    def test_elem_matters_only_remotely(self):
        """elem is transported by the RPC connector, so it affects the
        remote assembly but not the local one (shared memory)."""
        local_results = {
            r.name: r for r in parameter_sensitivities(local_assembly(), "search", ACTUALS)
        }
        remote_results = {
            r.name: r for r in parameter_sensitivities(remote_assembly(), "search", ACTUALS)
        }
        assert local_results["elem"].derivative == pytest.approx(0.0, abs=1e-15)
        assert remote_results["elem"].derivative > 0.0

    def test_ranked_by_absolute_elasticity(self):
        results = parameter_sensitivities(remote_assembly(), "search", ACTUALS)
        magnitudes = [abs(r.elasticity) for r in results]
        assert magnitudes == sorted(magnitudes, reverse=True)


class TestAttributeSensitivities:
    def test_network_rate_dominates_remote_at_high_gamma(self):
        params = SearchSortParameters().with_figure6_point(phi1=1e-6, gamma=1e-1)
        results = attribute_sensitivities(
            remote_assembly(params), "search", ACTUALS, top=3
        )
        assert results[0].name == "net12::failure_rate"

    def test_sort_rate_dominates_local(self):
        results = attribute_sensitivities(local_assembly(), "search", ACTUALS, top=3)
        assert results[0].name == "sort1::software_failure_rate"

    def test_derivatives_positive_for_failure_rates(self):
        results = attribute_sensitivities(local_assembly(), "search", ACTUALS)
        for r in results:
            if r.name.endswith("failure_rate") and r.derivative != 0.0:
                assert r.derivative > 0.0

    def test_speed_increase_helps(self):
        """d Pfail / d speed must be non-positive: faster cpu, less
        exposure time."""
        results = attribute_sensitivities(local_assembly(), "search", ACTUALS)
        by_name = {r.name: r for r in results}
        assert by_name["cpu1::speed"].derivative <= 0.0

    def test_top_truncation(self):
        results = attribute_sensitivities(local_assembly(), "search", ACTUALS, top=2)
        assert len(results) == 2


class TestFiniteDifference:
    def test_positive_slope_in_list(self):
        slope = finite_difference_sensitivity(
            local_assembly(), "search", ACTUALS, "list"
        )
        assert slope > 0.0

    def test_step_scaling(self):
        coarse = finite_difference_sensitivity(
            local_assembly(), "search", ACTUALS, "list", step=1e-3
        )
        fine = finite_difference_sensitivity(
            local_assembly(), "search", ACTUALS, "list", step=1e-5
        )
        assert coarse == pytest.approx(fine, rel=1e-3)
