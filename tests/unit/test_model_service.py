"""Unit tests for services and analytic interfaces."""

import pytest

from repro.errors import ModelError
from repro.model import (
    AnalyticInterface,
    CompositeService,
    FlowBuilder,
    FormalParameter,
    IntegerDomain,
    ServiceRequest,
    SimpleService,
)
from repro.symbolic import Call, Constant, Parameter


def cpu_interface() -> AnalyticInterface:
    return AnalyticInterface(
        formal_parameters=(FormalParameter("N", domain=IntegerDomain(low=0)),),
        attributes={"speed": 1e6, "failure_rate": 1e-6},
    )


def eq1_expression():
    return Constant(1.0) - Call(
        "exp", (-(Parameter("failure_rate") * Parameter("N") / Parameter("speed")),)
    )


class TestAnalyticInterface:
    def test_parameter_names(self):
        assert cpu_interface().parameter_names == ("N",)

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ModelError):
            AnalyticInterface(
                formal_parameters=(FormalParameter("N"), FormalParameter("N"))
            )

    def test_attribute_name_collision_rejected(self):
        with pytest.raises(ModelError):
            AnalyticInterface(
                formal_parameters=(FormalParameter("N"),),
                attributes={"N": 1.0},
            )

    def test_non_numeric_attribute_rejected(self):
        with pytest.raises(ModelError):
            AnalyticInterface(attributes={"speed": "fast"})

    def test_bad_attribute_name_rejected(self):
        with pytest.raises(ModelError):
            AnalyticInterface(attributes={"1bad": 1.0})

    def test_attributes_read_only(self):
        interface = cpu_interface()
        with pytest.raises(TypeError):
            interface.attributes["speed"] = 2.0

    def test_check_actuals_missing(self):
        with pytest.raises(ModelError):
            cpu_interface().check_actuals({})

    def test_check_actuals_out_of_domain(self):
        with pytest.raises(ModelError):
            cpu_interface().check_actuals({"N": -5})

    def test_check_actuals_accepts_valid(self):
        cpu_interface().check_actuals({"N": 100})


class TestSimpleService:
    def test_pfail_matches_equation_1(self):
        import math

        svc = SimpleService("cpu1", cpu_interface(), eq1_expression())
        expected = 1 - math.exp(-1e-6 * 1000 / 1e6)
        assert svc.pfail(N=1000) == pytest.approx(expected, rel=1e-12)

    def test_reliability_complements_pfail(self):
        svc = SimpleService("cpu1", cpu_interface(), eq1_expression())
        assert svc.reliability(N=100) == pytest.approx(1 - svc.pfail(N=100))

    def test_is_simple(self):
        svc = SimpleService("cpu1", cpu_interface(), eq1_expression())
        assert svc.is_simple and not svc.is_connector

    def test_unknown_names_in_expression_rejected(self):
        with pytest.raises(ModelError):
            SimpleService("cpu1", cpu_interface(), Parameter("mystery"))

    def test_default_pfail_is_zero(self):
        assert SimpleService("perfect").pfail() == 0.0

    def test_invalid_name_rejected(self):
        with pytest.raises(ModelError):
            SimpleService("")

    def test_domain_check_skippable(self):
        svc = SimpleService("cpu1", cpu_interface(), eq1_expression())
        env = svc.evaluation_environment({"N": 33.2}, check=False)
        assert env["N"] == 33.2
        with pytest.raises(ModelError):
            svc.evaluation_environment({"N": 33.2}, check=True)


class TestCompositeService:
    def make_flow(self, formals=("list",), target="cpu"):
        return (
            FlowBuilder(formals=formals)
            .state("s", [ServiceRequest(target, actuals={"N": Parameter("list")})])
            .sequence("s")
            .build()
        )

    def make_interface(self):
        return AnalyticInterface(
            formal_parameters=(FormalParameter("list", domain=IntegerDomain(low=1)),),
            attributes={"software_failure_rate": 1e-6},
        )

    def test_requirements_derived_from_flow(self):
        svc = CompositeService("search", self.make_interface(), self.make_flow())
        assert svc.requirements() == {"cpu"}
        assert not svc.is_simple

    def test_flow_params_must_be_published(self):
        bad_flow = self.make_flow(formals=("list", "hidden"))
        with pytest.raises(ModelError):
            CompositeService("search", self.make_interface(), bad_flow)

    def test_request_expressions_must_use_known_names(self):
        flow = (
            FlowBuilder(formals=("list",))
            .state(
                "s",
                [ServiceRequest("cpu", actuals={"N": Parameter("undeclared")})],
            )
            .sequence("s")
            .build()
        )
        with pytest.raises(ModelError):
            CompositeService("search", self.make_interface(), flow)

    def test_request_may_reference_attributes(self):
        flow = (
            FlowBuilder(formals=("list",))
            .state(
                "s",
                [
                    ServiceRequest(
                        "cpu",
                        actuals={"N": Parameter("list")},
                        internal_failure=Parameter("software_failure_rate"),
                    )
                ],
            )
            .sequence("s")
            .build()
        )
        CompositeService("search", self.make_interface(), flow)  # no raise

    def test_requires_service_flow(self):
        with pytest.raises(ModelError):
            CompositeService("search", self.make_interface(), flow="nope")

    def test_repr_mentions_params(self):
        svc = CompositeService("search", self.make_interface(), self.make_flow())
        assert "search" in repr(svc) and "list" in repr(svc)
