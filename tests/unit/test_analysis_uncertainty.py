"""Unit tests for uncertainty propagation over published attributes."""

import pytest

from repro.analysis import delta_method, sample_uncertainty
from repro.core import ReliabilityEvaluator
from repro.errors import EvaluationError
from repro.scenarios import local_assembly, remote_assembly

ACTUALS = {"elem": 1, "list": 500, "res": 1}


class TestDeltaMethod:
    def test_point_matches_evaluator(self):
        estimate = delta_method(local_assembly(), "search", ACTUALS)
        direct = ReliabilityEvaluator(local_assembly()).pfail("search", **ACTUALS)
        assert estimate.pfail == pytest.approx(direct, rel=1e-9)

    def test_zero_uncertainty_gives_zero_std(self):
        estimate = delta_method(local_assembly(), "search", ACTUALS, relative_std=0.0)
        assert estimate.std == 0.0

    def test_std_scales_linearly_in_first_order(self):
        small = delta_method(local_assembly(), "search", ACTUALS, relative_std=0.01)
        large = delta_method(local_assembly(), "search", ACTUALS, relative_std=0.02)
        assert large.std == pytest.approx(2 * small.std, rel=1e-9)

    def test_contributions_sum_to_one(self):
        estimate = delta_method(remote_assembly(), "search", ACTUALS)
        assert sum(estimate.contributions.values()) == pytest.approx(1.0)

    def test_network_dominates_remote_uncertainty(self):
        estimate = delta_method(remote_assembly(), "search", ACTUALS)
        top = max(estimate.contributions, key=estimate.contributions.get)
        assert top.startswith("net12::")

    def test_sort1_dominates_local_uncertainty(self):
        estimate = delta_method(local_assembly(), "search", ACTUALS)
        top = max(estimate.contributions, key=estimate.contributions.get)
        assert top == "sort1::software_failure_rate"

    def test_per_attribute_uncertainties(self):
        only_net = delta_method(
            remote_assembly(), "search", ACTUALS,
            relative_std={"net12::failure_rate": 0.5},
        )
        assert set(only_net.contributions) == {"net12::failure_rate"}
        assert only_net.std > 0.0

    def test_unknown_attribute_rejected(self):
        with pytest.raises(EvaluationError):
            delta_method(
                local_assembly(), "search", ACTUALS,
                relative_std={"ghost::rate": 0.1},
            )

    def test_interval_clipped(self):
        estimate = delta_method(local_assembly(), "search", ACTUALS, relative_std=50.0)
        low, high = estimate.interval()
        assert 0.0 <= low <= high <= 1.0


class TestSampling:
    def test_matches_delta_method_for_small_std(self):
        delta = delta_method(remote_assembly(), "search", ACTUALS, relative_std=0.05)
        sampled = sample_uncertainty(
            remote_assembly(), "search", ACTUALS,
            relative_std=0.05, samples=40_000, seed=7,
        )
        assert sampled.std == pytest.approx(delta.std, rel=0.1)

    def test_percentiles_monotone_and_bracket_median(self):
        estimate = sample_uncertainty(
            remote_assembly(), "search", ACTUALS, samples=5_000, seed=3
        )
        values = [estimate.percentiles[p] for p in sorted(estimate.percentiles)]
        assert values == sorted(values)
        assert estimate.percentiles[5.0] <= estimate.pfail <= estimate.percentiles[95.0]

    def test_seed_reproducibility(self):
        a = sample_uncertainty(local_assembly(), "search", ACTUALS,
                               samples=2_000, seed=11)
        b = sample_uncertainty(local_assembly(), "search", ACTUALS,
                               samples=2_000, seed=11)
        assert a.std == b.std and a.percentiles == b.percentiles

    def test_zero_uncertainty_degenerate(self):
        estimate = sample_uncertainty(
            local_assembly(), "search", ACTUALS,
            relative_std=0.0, samples=100, seed=0,
        )
        assert estimate.std == 0.0

    def test_sample_floor(self):
        with pytest.raises(EvaluationError):
            sample_uncertainty(local_assembly(), "search", ACTUALS, samples=1)

    def test_draws_stay_probabilities(self):
        estimate = sample_uncertainty(
            remote_assembly(), "search", ACTUALS,
            relative_std=2.0, samples=2_000, seed=5,
        )
        assert 0.0 <= estimate.percentiles[95.0] <= 1.0
