"""Unit tests for service flows and the flow builder."""

import pytest

from repro.errors import InvalidFlowError, InvalidSharingError
from repro.model import (
    AND,
    OR,
    FlowBuilder,
    FlowState,
    FlowTransition,
    ServiceFlow,
    ServiceRequest,
)
from repro.symbolic import Constant, Parameter


def request(target="svc"):
    return ServiceRequest(target, actuals={})


class TestFlowState:
    def test_reserved_names_rejected(self):
        for name in ("Start", "End", "Fail"):
            with pytest.raises(InvalidFlowError):
                FlowState(name)

    def test_bad_request_type_rejected(self):
        with pytest.raises(InvalidFlowError):
            FlowState("s", requests=("not a request",))

    def test_sharing_needs_two_requests(self):
        with pytest.raises(InvalidFlowError):
            FlowState("s", requests=(request(),), shared=True)

    def test_sharing_restriction_same_target(self):
        state = FlowState("s", (request("a"), request("b")), shared=True)
        with pytest.raises(InvalidSharingError):
            state.check_sharing_restriction()

    def test_sharing_ok_single_target(self):
        FlowState("s", (request("a"), request("a")), shared=True).check_sharing_restriction()

    def test_kofn_validated_against_request_count(self):
        from repro.model import KOfNCompletion

        with pytest.raises(Exception):
            FlowState("s", (request(),), completion=KOfNCompletion(2))


class TestFlowValidation:
    def test_minimal_valid_flow(self):
        flow = FlowBuilder(("n",)).state("s", [request()]).sequence("s").build()
        assert [s.name for s in flow.states] == ["s"]
        assert flow.request_targets() == {"svc"}

    def test_duplicate_state_rejected(self):
        with pytest.raises(InvalidFlowError):
            ServiceFlow(
                (),
                [FlowState("s"), FlowState("s")],
                [FlowTransition("Start", "s", Constant(1.0)),
                 FlowTransition("s", "End", Constant(1.0))],
            )

    def test_missing_start_transition_rejected(self):
        with pytest.raises(InvalidFlowError):
            ServiceFlow((), [FlowState("s")], [FlowTransition("s", "End", Constant(1.0))])

    def test_end_with_outgoing_rejected(self):
        with pytest.raises(InvalidFlowError):
            FlowBuilder().state("s", [request()]).sequence("s").transition(
                "End", "s", 1
            ).build()

    def test_incoming_to_start_rejected(self):
        with pytest.raises(InvalidFlowError):
            FlowBuilder().state("s", [request()]).sequence("s").transition(
                "s", "Start", 1
            ).build()

    def test_unknown_state_in_transition_rejected(self):
        with pytest.raises(InvalidFlowError):
            FlowBuilder().transition("Start", "ghost", 1).build()

    def test_dead_end_state_rejected(self):
        with pytest.raises(InvalidFlowError):
            ServiceFlow(
                (),
                [FlowState("s")],
                [FlowTransition("Start", "s", Constant(1.0))],
            )

    def test_unreachable_state_rejected(self):
        with pytest.raises(InvalidFlowError):
            (
                FlowBuilder()
                .state("a", [request()])
                .state("island", [request()])
                .sequence("a")
                .transition("island", "End", 1)
                .build()
            )

    def test_end_unreachable_rejected(self):
        # one state looping on itself only
        with pytest.raises(InvalidFlowError):
            (
                FlowBuilder()
                .state("loop", [request()])
                .transition("Start", "loop", 1)
                .transition("loop", "loop", 1)
                .build()
            )

    def test_undeclared_parameter_in_probability_rejected(self):
        with pytest.raises(InvalidFlowError):
            (
                FlowBuilder(formals=("n",))
                .state("s", [request()])
                .transition("Start", "s", Parameter("q"))
                .transition("s", "End", 1)
                .build()
            )

    def test_shared_state_with_mixed_targets_rejected_at_build(self):
        with pytest.raises(InvalidSharingError):
            (
                FlowBuilder()
                .state("s", [request("a"), request("b")], shared=True)
                .sequence("s")
                .build()
            )


class TestProbabilityChecks:
    def make_branching_flow(self):
        return (
            FlowBuilder(formals=("q",))
            .state("a", [request()])
            .state("b", [request()])
            .transition("Start", "a", Parameter("q"))
            .transition("Start", "b", 1 - Parameter("q"))
            .transition("a", "End", 1)
            .transition("b", "End", 1)
            .build()
        )

    def test_valid_probabilities_pass(self):
        self.make_branching_flow().check_probabilities({"q": 0.4})

    def test_row_sum_violation_detected(self):
        flow = (
            FlowBuilder(formals=("q",))
            .state("a", [request()])
            .transition("Start", "a", Parameter("q"))
            .transition("a", "End", 1)
            .build()
        )
        with pytest.raises(InvalidFlowError):
            flow.check_probabilities({"q": 0.5})

    def test_out_of_range_probability_detected(self):
        with pytest.raises(InvalidFlowError):
            self.make_branching_flow().check_probabilities({"q": 1.5})

    def test_boundary_values_accepted(self):
        flow = self.make_branching_flow()
        flow.check_probabilities({"q": 0.0})
        flow.check_probabilities({"q": 1.0})


class TestFlowBuilderAndDescribe:
    def test_sequence_helper(self):
        flow = (
            FlowBuilder()
            .state("a", [request()])
            .state("b", [request()])
            .sequence("a", "b")
            .build()
        )
        assert flow.outgoing("a")[0].target == "b"
        assert flow.outgoing("b")[0].target == "End"

    def test_describe_mentions_states_and_modes(self):
        flow = (
            FlowBuilder(("n",))
            .state("s", [request(), request()], completion=OR)
            .sequence("s")
            .build()
        )
        text = flow.describe()
        assert "state s (1-of-2)" in text
        assert "Start -> s" in text

    def test_state_lookup(self):
        flow = FlowBuilder().state("s", [request()]).sequence("s").build()
        assert flow.state("s").completion == AND
        with pytest.raises(InvalidFlowError):
            flow.state("ghost")
