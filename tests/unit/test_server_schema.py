"""Unit tests for the server's schema validator, status taxonomy,
coalescer and transport-agnostic service core — no sockets anywhere."""

import threading

import pytest

from repro.cli import EXIT_CODES, exit_code_for
from repro.errors import (
    BudgetExceededError,
    EvaluationError,
    MarkovError,
    ModelError,
    NumericalInstabilityError,
    ReproError,
    RequestValidationError,
    ServerError,
    ServerOverloadedError,
    SymbolicError,
)
from repro.runtime.budget import EvaluationBudget
from repro.server import (
    BATCH_REQUEST,
    ENDPOINTS,
    EVALUATE_REQUEST,
    SWEEP_REQUEST,
    Coalescer,
    EvaluationService,
    HTTP_STATUS,
    http_status_for,
    schema_problems,
    validate_request,
)

# ---------------------------------------------------------------------------
# the schema-subset validator
# ---------------------------------------------------------------------------


def test_valid_evaluate_body_has_no_problems():
    body = {
        "model": {"schema": "repro/1"},
        "service": "search",
        "actuals": {"list": 500},
        "solver": "auto",
        "compile": True,
        "budget": {"deadline": 5.0, "max_states": 100},
    }
    assert schema_problems(body, EVALUATE_REQUEST) == []


def test_missing_required_key_is_reported():
    problems = schema_problems({"service": "search"}, EVALUATE_REQUEST)
    assert any("missing required key 'model'" in p for p in problems)


def test_unexpected_key_is_reported():
    body = {"model": {}, "service": "s", "extra": 1}
    problems = schema_problems(body, EVALUATE_REQUEST)
    assert any("unexpected key 'extra'" in p for p in problems)


def test_wrong_types_are_reported_with_paths():
    body = {"model": [], "service": 7}
    problems = schema_problems(body, EVALUATE_REQUEST)
    assert any(p.startswith("$.model:") for p in problems)
    assert any(p.startswith("$.service:") for p in problems)


def test_bool_is_not_an_integer_or_number():
    body = {"model": {}, "service": "s", "budget": {"max_states": True}}
    problems = schema_problems(body, EVALUATE_REQUEST)
    assert any("$.budget.max_states" in p for p in problems)
    body = {"model": {}, "service": "s", "actuals": {"list": True}}
    problems = schema_problems(body, EVALUATE_REQUEST)
    assert any("$.actuals.list" in p for p in problems)


def test_enum_violation_is_reported():
    body = {"model": {}, "service": "s", "solver": "quantum"}
    problems = schema_problems(body, EVALUATE_REQUEST)
    assert any("$.solver" in p and "quantum" in p for p in problems)


def test_bounds_are_enforced():
    body = {"model": {}, "service": "s", "budget": {"deadline": -1}}
    assert any(
        "minimum" in p for p in schema_problems(body, EVALUATE_REQUEST)
    )
    sweep = {"model": {}, "service": "s", "parameter": "p",
             "start": 0, "stop": 1, "points": 1}
    assert any("minimum" in p for p in schema_problems(sweep, SWEEP_REQUEST))


def test_array_items_and_minitems():
    assert any(
        "minItems" in p
        for p in schema_problems({"requests": []}, BATCH_REQUEST)
    )
    body = {"requests": [{"service": "s"}]}
    problems = schema_problems(body, BATCH_REQUEST)
    assert any("$.requests[0]" in p and "model" in p for p in problems)


def test_validate_request_raises_typed_error():
    with pytest.raises(RequestValidationError) as excinfo:
        validate_request("/v1/evaluate", {}, EVALUATE_REQUEST)
    assert excinfo.value.endpoint == "/v1/evaluate"
    assert excinfo.value.problems
    # the taxonomy: a validation error is a ServerError is a ReproError
    assert isinstance(excinfo.value, ServerError)
    assert isinstance(excinfo.value, ReproError)


def test_validation_error_message_caps_listed_problems():
    error = RequestValidationError("/x", [f"problem {i}" for i in range(9)])
    assert "problem 4" in str(error)
    assert "problem 5" not in str(error)
    assert "9 problems total" in str(error)
    assert len(error.problems) == 9


# ---------------------------------------------------------------------------
# endpoint metadata
# ---------------------------------------------------------------------------


def test_every_post_endpoint_documents_its_schema():
    for endpoint in ENDPOINTS:
        if endpoint.method == "POST":
            assert endpoint.request_schema is not None, endpoint.path
            assert endpoint.request_example is not None, endpoint.path
        assert endpoint.response_example is not None, endpoint.path
        assert endpoint.status_codes, endpoint.path


def test_request_examples_validate_against_their_schemas():
    for endpoint in ENDPOINTS:
        if endpoint.request_schema is None:
            continue
        problems = schema_problems(
            endpoint.request_example, endpoint.request_schema
        )
        assert problems == [], endpoint.path


# ---------------------------------------------------------------------------
# HTTP status taxonomy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("error, status", [
    (ServerOverloadedError(3, 3), 429),
    (RequestValidationError("/x", ["bad"]), 400),
    (BudgetExceededError("deadline", 1.0, 2.0), 503),
    (NumericalInstabilityError("nan"), 500),
    (ModelError("bad model"), 400),
    (SymbolicError("bad expr"), 422),
    (MarkovError("bad chain"), 422),
    (EvaluationError("bad eval"), 422),
    (ReproError("anything else"), 500),
])
def test_http_status_taxonomy(error, status):
    assert http_status_for(error) == status


def test_every_http_status_class_has_a_cli_exit_code():
    # the two surfaces must stay branchable in parallel: every error the
    # HTTP taxonomy names resolves to a CLI exit code as well
    for cls, _status in HTTP_STATUS:
        error = cls.__new__(cls)
        assert isinstance(exit_code_for(error), int)
    # and every CLI-coded class resolves to an HTTP status
    for cls, _code in EXIT_CODES:
        error = cls.__new__(cls)
        assert 400 <= http_status_for(error) <= 599


# ---------------------------------------------------------------------------
# budget parsing
# ---------------------------------------------------------------------------


def test_budget_from_dict_empty_means_unlimited():
    assert EvaluationBudget.from_dict(None) is None
    assert EvaluationBudget.from_dict({}) is None


def test_budget_from_dict_coerces_types():
    budget = EvaluationBudget.from_dict(
        {"deadline": 5, "max_states": 100.0}
    )
    assert budget.deadline == 5.0
    assert budget.max_states == 100


def test_budget_from_dict_rejects_unknown_limits():
    with pytest.raises(ValueError):
        EvaluationBudget.from_dict({"max_bananas": 3})


# ---------------------------------------------------------------------------
# the coalescer
# ---------------------------------------------------------------------------


def test_single_caller_is_a_leader():
    coalescer = Coalescer()
    result, coalesced = coalescer.run("k", lambda: 42)
    assert (result, coalesced) == (42, False)
    assert coalescer.leaders == 1
    assert coalescer.followers == 0
    # the key is gone the moment the leader finishes
    assert coalescer.waiting("k") == 0


def test_sequential_calls_never_coalesce():
    coalescer = Coalescer()
    calls = []
    for _ in range(3):
        _, coalesced = coalescer.run("k", lambda: calls.append(1))
        assert coalesced is False
    assert len(calls) == 3


def test_concurrent_followers_share_one_computation():
    coalescer = Coalescer()
    gate = threading.Event()
    calls = []

    def compute():
        calls.append(threading.get_ident())
        assert gate.wait(timeout=10)
        return "shared"

    results = []

    def request():
        results.append(coalescer.run("k", compute))

    threads = [threading.Thread(target=request) for _ in range(5)]
    for thread in threads:
        thread.start()
    # wait until all four followers are registered behind the leader,
    # then release the leader's computation
    for _ in range(1000):
        if coalescer.waiting("k") == 4:
            break
        threading.Event().wait(0.01)
    assert coalescer.waiting("k") == 4
    gate.set()
    for thread in threads:
        thread.join(timeout=10)

    assert len(calls) == 1  # exactly one thread computed
    assert [r[0] for r in results] == ["shared"] * 5
    assert sorted(r[1] for r in results) == [False, True, True, True, True]
    assert coalescer.leaders == 1
    assert coalescer.followers == 4


def test_leader_error_propagates_to_followers():
    coalescer = Coalescer()
    gate = threading.Event()

    def compute():
        assert gate.wait(timeout=10)
        raise MarkovError("chain went wrong")

    outcomes = []

    def request():
        try:
            coalescer.run("k", compute)
            outcomes.append("ok")
        except MarkovError:
            outcomes.append("error")

    threads = [threading.Thread(target=request) for _ in range(3)]
    for thread in threads:
        thread.start()
    for _ in range(1000):
        if coalescer.waiting("k") == 2:
            break
        threading.Event().wait(0.01)
    gate.set()
    for thread in threads:
        thread.join(timeout=10)
    assert outcomes == ["error"] * 3
    # a failed flight is forgotten too: the next call recomputes
    result, coalesced = coalescer.run("k", lambda: "fresh")
    assert (result, coalesced) == ("fresh", False)


def test_distinct_keys_do_not_serialize():
    coalescer = Coalescer()
    assert coalescer.run("a", lambda: 1)[0] == 1
    assert coalescer.run("b", lambda: 2)[0] == 2
    assert coalescer.leaders == 2
    assert coalescer.followers == 0


# ---------------------------------------------------------------------------
# the service core, transport-free
# ---------------------------------------------------------------------------


@pytest.fixture
def model_document():
    import json

    from repro.dsl import dump_assembly
    from repro.scenarios import local_assembly

    return json.loads(dump_assembly(local_assembly()))


def test_service_evaluate_round_trip(model_document):
    service = EvaluationService()
    reply = service.evaluate({
        "model": model_document,
        "service": "search",
        "actuals": {"elem": 1, "list": 500, "res": 1},
    })
    assert reply["pfail"] == pytest.approx(0.004035, abs=5e-6)
    assert reply["reliability"] == pytest.approx(1 - reply["pfail"])
    assert reply["backend"] == "symbolic"
    assert reply["coalesced"] is False
    assert service.evaluations == 1


def test_service_reuses_warm_caches(model_document):
    service = EvaluationService()
    payload = {
        "model": model_document,
        "service": "search",
        "actuals": {"elem": 1, "list": 500, "res": 1},
    }
    service.evaluate(payload)
    before = service.plan_cache.stats.hits
    service.evaluate(payload)
    stats = service.cache_stats()
    assert service.plan_cache.stats.hits > before
    assert stats["model"]["hits"] >= 1
    assert stats["server"]["evaluations"] == 2
    # the solver block carries plan/factorization counters and the
    # low-rank update outcomes next to the LRU stats
    solver = stats["solver"]
    assert solver["plans"] >= 0
    assert solver["factorizations"] >= 0
    assert set(solver["updates"]) == {
        "applied", "fallback_rank", "fallback_condition"
    }


def test_service_rejects_invalid_payloads(model_document):
    service = EvaluationService()
    with pytest.raises(RequestValidationError):
        service.evaluate({"service": "search"})
    with pytest.raises(RequestValidationError):
        service.sweep({"model": model_document, "service": "search"})
    with pytest.raises(RequestValidationError):
        service.batch({"requests": []})


def test_service_default_budget_applies(model_document):
    service = EvaluationService(default_budget={"deadline": 0.0})
    with pytest.raises(BudgetExceededError):
        service.evaluate({
            "model": model_document,
            "service": "search",
            "actuals": {"elem": 1, "list": 500, "res": 1},
        })
    # a request-level budget replaces the default
    reply = service.evaluate({
        "model": model_document,
        "service": "search",
        "actuals": {"elem": 1, "list": 500, "res": 1},
        "budget": {"deadline": 60.0},
    })
    assert reply["pfail"] > 0


def test_admission_sheds_past_max_inflight(model_document):
    service = EvaluationService(max_inflight=1)
    with service.admit():
        assert service.inflight == 1
        with pytest.raises(ServerOverloadedError):
            with service.admit():
                pass  # pragma: no cover - admission must refuse
    assert service.inflight == 0
    assert service.shed == 1
    assert service.requests == 2
    # capacity is available again after the first request finished
    with service.admit():
        pass


def test_service_health_shape():
    health = EvaluationService().health()
    assert health["status"] == "ok"
    assert health["requests"] == {"total": 0, "inflight": 0, "shed": 0}
    assert health["uptime_seconds"] >= 0
