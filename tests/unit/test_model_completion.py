"""Unit tests for completion models."""

import pytest

from repro.errors import ModelError
from repro.model import AND, OR, AndCompletion, KOfNCompletion, OrCompletion


class TestAnd:
    def test_requires_all(self):
        assert AND.required_successes(5) == 5

    def test_zero_requests(self):
        assert AND.required_successes(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            AND.required_successes(-1)

    def test_describe(self):
        assert AND.describe(3) == "3-of-3"

    def test_singleton_equality(self):
        assert AND == AndCompletion()


class TestOr:
    def test_requires_one(self):
        assert OR.required_successes(5) == 1

    def test_zero_requests_rejected(self):
        with pytest.raises(ModelError):
            OR.required_successes(0)

    def test_describe(self):
        assert OR.describe(4) == "1-of-4"

    def test_singleton_equality(self):
        assert OR == OrCompletion()


class TestKOfN:
    def test_requires_k(self):
        assert KOfNCompletion(2).required_successes(3) == 2

    def test_k_equal_n_is_and(self):
        assert KOfNCompletion(4).required_successes(4) == AND.required_successes(4)

    def test_k_one_is_or(self):
        assert KOfNCompletion(1).required_successes(4) == OR.required_successes(4)

    def test_k_above_n_rejected(self):
        with pytest.raises(ModelError):
            KOfNCompletion(5).required_successes(3)

    def test_non_positive_k_rejected(self):
        with pytest.raises(ModelError):
            KOfNCompletion(0)
        with pytest.raises(ModelError):
            KOfNCompletion(-2)

    def test_non_integer_k_rejected(self):
        with pytest.raises(ModelError):
            KOfNCompletion(1.5)
