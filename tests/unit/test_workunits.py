"""The campaign layer: sharding, the store, the supervisor, reassembly."""

import json
import math

import pytest

from repro.errors import CampaignStoreError, EvaluationError
from repro.robustness.chaos import GARBAGE_PAYLOAD, ChaosPolicy
from repro.scenarios import local_assembly
from repro.workunits import (
    Campaign,
    ResultStore,
    Supervisor,
    WorkUnit,
    assemble_batch,
    assemble_fuzz,
    assemble_sweep,
    backoff_delay,
    batch_campaign,
    fuzz_campaign,
    load_state,
    run_campaign,
    sweep_campaign,
)

GRID = [float(v) for v in range(1, 21)]
FIXED = {"elem": 1.0, "res": 1.0}


def sweep20(**kwargs):
    return sweep_campaign(
        local_assembly(), "search", "list", GRID, FIXED, **kwargs
    )


class TestWorkUnits:
    def test_sharding_defaults(self):
        campaign = sweep20()
        assert campaign.kind == "sweep"
        assert len(campaign) == 3  # ceil(20 / 8)
        starts = [unit.payload["start"] for unit in campaign.units]
        assert starts == [0, 8, 16]
        flattened = [
            v for unit in campaign.units for v in unit.payload["values"]
        ]
        assert flattened == GRID

    def test_unit_ids_are_stable_content_hashes(self):
        a, b = sweep20(), sweep20()
        assert [u.unit_id for u in a.units] == [u.unit_id for u in b.units]
        assert a.campaign_id == b.campaign_id
        # any input change moves every affected id
        c = sweep20(solver="dense")
        assert a.campaign_id != c.campaign_id
        assert all(
            x.unit_id != y.unit_id for x, y in zip(a.units, c.units)
        )

    def test_sharding_independent_of_jobs(self):
        # ids derive from content only; a units override reslices
        campaign = sweep20(units=5)
        assert len(campaign) == 5
        assert [
            v for u in campaign.units for v in u.payload["values"]
        ] == GRID

    def test_round_trip_dict_form(self):
        unit = sweep20().units[0]
        clone = WorkUnit.from_dict(
            json.loads(json.dumps(unit.to_dict()))
        )
        assert clone.unit_id == unit.unit_id

    def test_rejects_bad_inputs(self):
        with pytest.raises(EvaluationError):
            sweep_campaign(local_assembly(), "search", "nope", GRID, FIXED)
        with pytest.raises(EvaluationError):
            sweep_campaign(local_assembly(), "search", "list", [], FIXED)
        with pytest.raises(EvaluationError):
            sweep20(units=0)
        with pytest.raises(EvaluationError):
            batch_campaign([], "search", None)
        with pytest.raises(EvaluationError):
            fuzz_campaign(local_assembly(), 0)

    def test_batch_campaign_keeps_request_order(self):
        points = [dict(FIXED, list=100.0), dict(FIXED, list=200.0)]
        campaign = batch_campaign(
            [("a", local_assembly()), ("b", local_assembly())],
            "search", points,
        )
        indices = [
            e["request_index"]
            for u in campaign.units
            for e in u.payload["entries"]
        ]
        assert indices == [0, 1, 2, 3]
        labels = {u.payload["label"] for u in campaign.units}
        assert labels == {"a", "b"}

    def test_fuzz_corpus_is_deterministic(self):
        a = fuzz_campaign(local_assembly(), 8, seed=3)
        b = fuzz_campaign(local_assembly(), 8, seed=3)
        assert a.campaign_id == b.campaign_id
        c = fuzz_campaign(local_assembly(), 8, seed=4)
        assert a.campaign_id != c.campaign_id


class TestChaosPolicy:
    def test_parse_grammar(self):
        policy = ChaosPolicy.parse("crash@2, hang@5, corrupt@0x3, crash@7x*")
        assert policy.schedule == (
            (2, "crash", 1), (5, "hang", 1), (0, "corrupt", 3),
            (7, "crash", None),
        )
        assert policy.describe() == "crash@2,hang@5,corrupt@0x3,crash@7x*"

    @pytest.mark.parametrize(
        "spec", ["", "boom@1", "crash", "crash@x", "crash@1xq", "crash@1x0"]
    )
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(EvaluationError):
            ChaosPolicy.parse(spec)

    def test_action_windows(self):
        policy = ChaosPolicy.parse("corrupt@1x2,crash@3x*")
        assert policy.action_for(1, 1) == "corrupt"
        assert policy.action_for(1, 2) == "corrupt"
        assert policy.action_for(1, 3) is None
        assert policy.action_for(3, 99) == "crash"
        assert policy.action_for(0, 1) is None
        assert policy.needs_isolation
        assert not ChaosPolicy.parse("corrupt@1").needs_isolation

    def test_inline_supervisor_refuses_isolation_chaos(self):
        with pytest.raises(EvaluationError, match="isolation"):
            Supervisor(
                sweep20(), mode="inline",
                chaos=ChaosPolicy.parse("crash@0"),
            )


class TestBackoff:
    def test_deterministic_capped_exponential(self):
        d1 = backoff_delay("abc", 1, base=0.1, cap=5.0)
        assert d1 == backoff_delay("abc", 1, base=0.1, cap=5.0)
        assert 0.1 <= d1 <= 0.15  # base * (1 + jitter in [0, 0.5])
        d9 = backoff_delay("abc", 9, base=0.1, cap=5.0)
        assert 5.0 <= d9 <= 7.5  # capped before jitter
        assert backoff_delay("abc", 1, base=0.0) == 0.0
        # different units decorrelate
        assert backoff_delay("abc", 1) != backoff_delay("xyz", 1)


class TestStore:
    def test_fresh_store_writes_header(self, tmp_path):
        campaign = sweep20()
        path = tmp_path / "s.jsonl"
        store, state = ResultStore.for_campaign(path, campaign)
        store.close()
        assert state.records == 0
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "campaign"
        assert header["campaign"] == campaign.campaign_id
        assert header["units"] == len(campaign)

    def test_refuses_foreign_campaign(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store, _ = ResultStore.for_campaign(path, sweep20())
        store.close()
        with pytest.raises(CampaignStoreError, match="was written for"):
            ResultStore.for_campaign(path, sweep20(solver="dense"))

    def test_refuses_non_journal_file(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"kind":"attempt","unit":"u","attempt":1}\n')
        with pytest.raises(CampaignStoreError, match="no campaign header"):
            ResultStore.for_campaign(path, sweep20())

    def test_replay_tolerates_torn_tail(self, tmp_path):
        campaign = sweep20()
        path = tmp_path / "s.jsonl"
        store, _ = ResultStore.for_campaign(path, campaign)
        store.record_attempt(
            campaign.units[0].unit_id, 1, "done", elapsed=0.1, result=[1.0]
        )
        store.close()
        with path.open("a") as fh:
            fh.write('{"kind": "attempt", "unit": "trunc')  # torn append
        state = load_state(path)
        assert state.skipped_lines == 1
        assert state.results == {campaign.units[0].unit_id: [1.0]}

    def test_missing_file_is_empty_state(self, tmp_path):
        state = load_state(tmp_path / "absent.jsonl")
        assert state.header is None and not state.results

    def test_attempts_and_quarantine_replay(self, tmp_path):
        campaign = sweep20()
        unit = campaign.units[0].unit_id
        path = tmp_path / "s.jsonl"
        store, _ = ResultStore.for_campaign(path, campaign)
        store.record_attempt(unit, 1, "crashed", elapsed=0.0, error="boom")
        store.record_attempt(unit, 2, "timeout", elapsed=5.0, error="slow")
        store.record_quarantine(unit, 2, "gave up")
        store.close()
        state = load_state(path)
        assert state.attempts[unit] == 2
        assert unit in state.quarantined
        assert unit not in state.results


class TestSupervisorInline:
    def test_completes_and_resumes_bit_identically(self, tmp_path):
        campaign = sweep20()
        path = tmp_path / "s.jsonl"
        first = run_campaign(campaign, path, mode="inline")
        assert first.complete and first.ok
        assert len(first.executed) == 3
        again = run_campaign(campaign, path, mode="inline")
        assert again.resumed == 3 and not again.executed
        assert again.attempts == 0  # strict no-op
        a = assemble_sweep(campaign, first)
        b = assemble_sweep(campaign, again)
        assert list(a.pfail) == list(b.pfail)

    def test_corrupt_chaos_is_retried_then_succeeds(self, tmp_path):
        campaign = sweep20()
        report = run_campaign(
            campaign, tmp_path / "s.jsonl", mode="inline",
            chaos=ChaosPolicy.parse("corrupt@1"), backoff_base=0.0,
        )
        assert report.complete and not report.quarantined
        assert report.attempts == 4  # 3 units + 1 retry
        state = load_state(tmp_path / "s.jsonl")
        corrupted = campaign.units[1].unit_id
        assert state.attempts[corrupted] == 2

    def test_poison_corrupt_unit_is_quarantined(self, tmp_path):
        campaign = sweep20()
        report = run_campaign(
            campaign, tmp_path / "s.jsonl", mode="inline",
            chaos=ChaosPolicy.parse("corrupt@1x*"),
            retries=2, backoff_base=0.0,
        )
        assert report.complete and not report.ok
        poisoned = campaign.units[1].unit_id
        assert poisoned in report.quarantined
        assert len(report.results) == 2
        # the quarantined slice renders as a NaN hole, not a short grid
        sweep = assemble_sweep(campaign, report)
        assert len(sweep.values) == len(GRID)
        assert all(math.isnan(v) for v in sweep.pfail[8:16])
        assert not any(math.isnan(v) for v in sweep.pfail[:8])
        # resuming keeps the quarantine (and does not retry the unit)
        again = run_campaign(
            campaign, tmp_path / "s.jsonl", mode="inline", retries=2,
        )
        assert poisoned in again.quarantined and not again.executed

    def test_garbage_payload_never_validates(self):
        unit = sweep20().units[0].to_dict()
        from repro.workunits.worker import validate_payload

        assert validate_payload(unit, list(GARBAGE_PAYLOAD)) is not None
        assert validate_payload(unit, [0.5] * 8) is None
        assert validate_payload(unit, [0.5] * 7) is not None
        assert validate_payload(unit, ["x"] * 8) is not None

    def test_redundancy_validation_runs_and_matches(self, tmp_path):
        campaign = sweep20()
        report = run_campaign(
            campaign, tmp_path / "s.jsonl", mode="inline",
            validate_redundancy=1_000_000_000,  # sample ~nothing...
        )
        assert report.validations == 0 or not report.mismatches
        report = run_campaign(
            campaign, tmp_path / "v.jsonl", mode="inline",
            validate_redundancy=2,
        )
        assert report.validations >= 1
        assert not report.mismatches
        # resuming the completed store schedules no validation either
        again = run_campaign(
            campaign, tmp_path / "v.jsonl", mode="inline",
            validate_redundancy=2,
        )
        assert again.validations == 0

    def test_budget_deadline_load_sheds(self):
        from repro.errors import BudgetExceededError
        from repro.runtime import EvaluationBudget

        with pytest.raises(BudgetExceededError):
            run_campaign(
                sweep20(), None, mode="inline",
                budget=EvaluationBudget(deadline=0.0),
            )

    def test_supervisor_rejects_bad_options(self):
        with pytest.raises(EvaluationError):
            Supervisor(sweep20(), mode="weird")
        with pytest.raises(EvaluationError):
            Supervisor(sweep20(), retries=-1)
        with pytest.raises(EvaluationError):
            Supervisor(sweep20(), unit_timeout=0.0)


class TestAssembly:
    def test_sweep_matches_direct_evaluation(self):
        import numpy as np

        from repro.analysis import sweep_parameter

        campaign = sweep20()
        report = run_campaign(campaign, None, mode="inline")
        assembled = assemble_sweep(campaign, report)
        direct = sweep_parameter(
            local_assembly(), "search", "list", np.asarray(GRID), FIXED,
        )
        assert list(assembled.pfail) == list(direct.pfail)
        assert assembled.assembly == direct.assembly

    def test_batch_assembles_ordered_entries(self):
        points = [dict(FIXED, list=100.0), dict(FIXED, list=200.0)]
        campaign = batch_campaign(
            [("a", local_assembly()), ("b", local_assembly())],
            "search", points,
        )
        report = run_campaign(campaign, None, mode="inline")
        entries = assemble_batch(campaign, report)
        assert [e.index for e in entries] == [0, 1, 2, 3]
        assert all(e.ok for e in entries)
        assert entries[0].pfail == entries[2].pfail  # same model, same point

    def test_fuzz_matches_direct_harness(self):
        from repro.robustness import FuzzHarness

        campaign = fuzz_campaign(
            local_assembly(), 6, seed=3, trials=200, deadline=5.0
        )
        report = run_campaign(campaign, None, mode="inline")
        assembled = assemble_fuzz(campaign, report)
        direct = FuzzHarness(
            local_assembly(), seed=3, trials=200, deadline=5.0
        ).run(6)
        assert [c.status for c in assembled.cases] == [
            c.status for c in direct.cases
        ]
        assert [c.pfail for c in assembled.cases] == [
            c.pfail for c in direct.cases
        ]

    def test_kind_mismatch_raises(self):
        campaign = sweep20()
        report = run_campaign(campaign, None, mode="inline")
        with pytest.raises(EvaluationError):
            assemble_fuzz(campaign, report)


class TestCampaignIds:
    def test_campaign_requires_units(self):
        with pytest.raises(EvaluationError):
            Campaign("sweep", (), {})

    def test_unit_by_id(self):
        campaign = sweep20()
        unit = campaign.units[1]
        assert campaign.unit_by_id(unit.unit_id) is unit
        with pytest.raises(EvaluationError):
            campaign.unit_by_id("nope")
