"""Unit tests for the model fault-injection subsystem
(:mod:`repro.robustness`): mutation operators, the contract harness, and
its CLI binding (``python -m repro fuzz``).

The contract under test: every corrupted model yields either a correct
answer (``0 <= pfail <= 1``) or a typed :class:`~repro.errors.ReproError`
— never a crash, never an out-of-range probability.
"""

import pytest

from repro.cli import EXIT_FUZZ_VIOLATION, main
from repro.dsl import assembly_to_dict
from repro.errors import ModelError, ReproError
from repro.robustness import (
    OPERATOR_NAMES,
    FuzzHarness,
    ModelMutator,
    default_target,
)
from repro.robustness.harness import CRASH, OK, OUT_OF_RANGE, TYPED_ERROR
from repro.scenarios import local_assembly


class TestMutator:
    def test_thirteen_operator_classes(self):
        assert len(OPERATOR_NAMES) == 13
        assert "unnormalized-row" in OPERATOR_NAMES
        assert "garbage-json" in OPERATOR_NAMES
        assert "trap-cycle" in OPERATOR_NAMES

    def test_same_seed_reproduces_the_stream(self):
        base = local_assembly()
        first = [
            (m.operator, m.detail)
            for m in ModelMutator(base, seed=42).generate(24)
        ]
        second = [
            (m.operator, m.detail)
            for m in ModelMutator(base, seed=42).generate(24)
        ]
        assert first == second

    def test_different_seeds_differ(self):
        base = local_assembly()
        a = [m.detail for m in ModelMutator(base, seed=1).generate(24)]
        b = [m.detail for m in ModelMutator(base, seed=2).generate(24)]
        assert a != b

    def test_generate_cycles_every_operator(self):
        mutations = list(ModelMutator(local_assembly(), seed=0).generate(13))
        assert {m.operator for m in mutations} == set(OPERATOR_NAMES)

    def test_operator_restriction(self):
        mutator = ModelMutator(
            local_assembly(), operators=("nan-attribute",)
        )
        assert mutator.operator_names == ("nan-attribute",)
        assert all(
            m.operator == "nan-attribute" for m in mutator.generate(5)
        )

    def test_unknown_operator_set_rejected(self):
        with pytest.raises(ValueError):
            ModelMutator(local_assembly(), operators=("flux-capacitor",))

    def test_mutation_does_not_touch_the_base(self):
        base = assembly_to_dict(local_assembly())
        mutator = ModelMutator(base, seed=0)
        snapshot = assembly_to_dict(local_assembly())
        for _ in range(12):
            mutator.mutate()
        assert mutator._base == snapshot

    def test_text_level_corruption_is_a_typed_load_error(self):
        mutator = ModelMutator(
            local_assembly(), seed=3, operators=("truncated-json",)
        )
        mutation = mutator.mutate()
        assert mutation.text is not None
        with pytest.raises(ModelError):
            mutation.build()


class TestDefaultTarget:
    def test_picks_top_composite_with_in_domain_actuals(self):
        service, actuals = default_target(local_assembly())
        assert service == "search"
        assert set(actuals) == {"elem", "list", "res"}
        # a healthy model must evaluate cleanly at the chosen point
        from repro.core import ReliabilityEvaluator

        pfail = ReliabilityEvaluator(local_assembly()).pfail(service, **actuals)
        assert 0.0 <= pfail <= 1.0


class TestHarness:
    @pytest.fixture(scope="class")
    def report(self):
        harness = FuzzHarness(
            local_assembly(), seed=11, trials=400, deadline=5.0
        )
        return harness.run(24)

    def test_contract_holds(self, report):
        assert report.ok, report.summary()
        assert report.violations == []
        assert report.count(CRASH) == 0
        assert report.count(OUT_OF_RANGE) == 0

    def test_every_case_classified(self, report):
        assert len(report.cases) == 24
        assert all(c.status in (OK, TYPED_ERROR) for c in report.cases)
        assert report.count(OK) + report.count(TYPED_ERROR) == 24

    def test_corruptions_actually_bite(self, report):
        """The mutators must not be no-ops: a healthy majority of the
        corruption classes must provoke typed refusals."""
        assert report.count(TYPED_ERROR) >= 8

    def test_ok_cases_carry_in_range_pfail_and_tier(self, report):
        for case in report.cases:
            if case.status == OK:
                assert 0.0 <= case.pfail <= 1.0
                assert case.tier is not None

    def test_by_operator_covers_all_classes(self, report):
        assert set(report.by_operator()) == set(OPERATOR_NAMES)

    def test_summary_renders_verdict(self, report):
        text = report.summary()
        assert "contract HELD" in text
        assert "24 mutated models" in text


class TestFuzzCommand:
    def test_smoke_run_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "local.json"
        assert main(["export-scenario", "local", "-o", str(path)]) == 0
        code = main(
            ["fuzz", str(path), "--count", "12", "--seed", "5", "--smoke"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "contract HELD" in out

    def test_violation_exit_code_is_distinct(self):
        assert EXIT_FUZZ_VIOLATION == 9
