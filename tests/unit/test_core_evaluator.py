"""Unit tests for the recursive reliability evaluator (Pfail_Alg)."""

import math

import pytest

from repro.core import ReliabilityEvaluator
from repro.errors import (
    CyclicAssemblyError,
    EvaluationError,
    ModelError,
)
from repro.model import (
    Assembly,
    CpuResource,
    FlowBuilder,
    ServiceRequest,
    perfect_connector,
)
from repro.model.parameters import FormalParameter, IntegerDomain
from repro.model.service import AnalyticInterface, CompositeService
from repro.scenarios import local_assembly, recursive_assembly
from repro.symbolic import Parameter


def one_call_assembly(cpu_rate=1e-6, cpu_speed=1e6) -> Assembly:
    """app -> cpu1 with N = n operations; Pfail(app, n) = eq. (1)."""
    flow = (
        FlowBuilder(formals=("n",))
        .state("work", [ServiceRequest("cpu", actuals={"N": Parameter("n")})])
        .sequence("work")
        .build()
    )
    app = CompositeService(
        "app",
        AnalyticInterface(
            formal_parameters=(FormalParameter("n", domain=IntegerDomain(low=0)),)
        ),
        flow,
    )
    assembly = Assembly("one-call")
    assembly.add_services(
        app,
        CpuResource("cpu1", cpu_speed, cpu_rate).service(),
        perfect_connector("loc"),
    )
    assembly.bind("app", "cpu", "cpu1", connector="loc")
    return assembly


class TestSimpleServices:
    def test_simple_service_evaluates_directly(self):
        evaluator = ReliabilityEvaluator(one_call_assembly())
        n = 1e4
        assert evaluator.pfail("cpu1", N=n) == pytest.approx(
            1 - math.exp(-1e-6 * n / 1e6)
        )

    def test_reliability_is_complement(self):
        evaluator = ReliabilityEvaluator(one_call_assembly())
        assert evaluator.reliability("cpu1", N=100) == pytest.approx(
            1 - evaluator.pfail("cpu1", N=100)
        )


class TestCompositeServices:
    def test_single_request_passthrough(self):
        """app's unreliability equals cpu1's at the derived workload."""
        evaluator = ReliabilityEvaluator(one_call_assembly())
        assert evaluator.pfail("app", n=5000) == pytest.approx(
            evaluator.pfail("cpu1", N=5000), rel=1e-12
        )

    def test_accepts_service_object(self):
        assembly = one_call_assembly()
        evaluator = ReliabilityEvaluator(assembly)
        svc = assembly.service("app")
        assert evaluator.pfail(svc, n=10) == evaluator.pfail("app", n=10)

    def test_missing_actual_rejected(self):
        evaluator = ReliabilityEvaluator(one_call_assembly())
        with pytest.raises(EvaluationError):
            evaluator.pfail("app")

    def test_unknown_actual_rejected(self):
        evaluator = ReliabilityEvaluator(one_call_assembly())
        with pytest.raises(EvaluationError):
            evaluator.pfail("app", n=1, bogus=2)

    def test_array_actual_rejected(self):
        import numpy as np

        evaluator = ReliabilityEvaluator(one_call_assembly())
        with pytest.raises(EvaluationError):
            evaluator.pfail("app", n=np.array([1.0, 2.0]))

    def test_domain_check_on_top_level(self):
        evaluator = ReliabilityEvaluator(one_call_assembly())
        with pytest.raises(ModelError):
            evaluator.pfail("app", n=-5)

    def test_domain_check_can_be_disabled(self):
        evaluator = ReliabilityEvaluator(one_call_assembly(), check_domains=False)
        assert 0.0 <= evaluator.pfail("app", n=10.5) <= 1.0

    def test_invalid_assembly_rejected_up_front(self):
        assembly = one_call_assembly()
        # remove the binding by rebuilding without it
        broken = Assembly("broken")
        for svc in assembly.services:
            broken.add_service(svc)
        with pytest.raises(ModelError):
            ReliabilityEvaluator(broken)


class TestMemoization:
    def test_cache_hits_for_repeated_actuals(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        first = evaluator.pfail("search", elem=1, list=100, res=1)
        cached = evaluator.pfail("search", elem=1, list=100, res=1)
        assert first == cached
        assert (("search", (("elem", 1.0), ("list", 100.0), ("res", 1.0)))
                in evaluator._cache)

    def test_clear_cache(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        evaluator.pfail("search", elem=1, list=100, res=1)
        evaluator.clear_cache()
        assert not evaluator._cache

    def test_different_actuals_not_conflated(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        a = evaluator.pfail("search", elem=1, list=10, res=1)
        b = evaluator.pfail("search", elem=1, list=1000, res=1)
        assert a != b


class TestCycles:
    def test_cyclic_assembly_raises_with_cycle_path(self):
        evaluator = ReliabilityEvaluator(recursive_assembly())
        with pytest.raises(CyclicAssemblyError) as excinfo:
            evaluator.pfail("A", size=1)
        assert excinfo.value.cycle[0] == excinfo.value.cycle[-1]
        assert set(excinfo.value.cycle) == {"A", "B"}


class TestReport:
    def test_report_totals_match_pfail(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        report = evaluator.report("search", elem=1, list=200, res=1)
        assert report.pfail == pytest.approx(
            evaluator.pfail("search", elem=1, list=200, res=1), rel=1e-12
        )
        assert report.reliability == pytest.approx(1 - report.pfail)

    def test_report_state_breakdowns(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        report = evaluator.report("search", elem=1, list=200, res=1)
        names = {s.state for s in report.states}
        assert names == {"sort", "search"}
        for state in report.states:
            assert 0.0 <= state.failure_probability <= 1.0
            assert state.expected_visits >= 0.0

    def test_expected_visits_reflect_branching(self):
        """The sort state is visited with probability q = 0.9."""
        evaluator = ReliabilityEvaluator(local_assembly())
        report = evaluator.report("search", elem=1, list=200, res=1)
        visits = {s.state: s.expected_visits for s in report.states}
        assert visits["sort"] == pytest.approx(0.9, abs=1e-9)
        # slightly below 1.0: failures in the sort state divert mass to Fail
        failures = {s.state: s.failure_probability for s in report.states}
        expected = 0.9 * (1 - failures["sort"]) + 0.1
        assert visits["search"] == pytest.approx(expected, abs=1e-9)

    def test_dominant_state_is_sort(self):
        """Sorting does list*log(list) work vs log(list): it dominates."""
        evaluator = ReliabilityEvaluator(local_assembly())
        report = evaluator.report("search", elem=1, list=500, res=1)
        assert report.dominant_state().state == "sort"

    def test_report_on_simple_service_rejected(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        with pytest.raises(EvaluationError):
            evaluator.report("cpu1", N=1)

    def test_report_str_renders(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        text = str(evaluator.report("search", elem=1, list=10, res=1))
        assert "Pfail" in text and "sort" in text


class TestStateProbabilities:
    def test_exposes_raw_inputs(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        per_state = evaluator.state_probabilities("search", elem=1, list=100, res=1)
        assert set(per_state) == {"sort", "search"}
        internal, external = per_state["sort"]
        assert len(internal) == len(external) == 1
        # the sort call is a reliable method call: internal failure 0
        assert internal[0] == 0.0
        assert 0.0 < external[0] < 1.0

    def test_rejected_for_simple_service(self):
        evaluator = ReliabilityEvaluator(local_assembly())
        with pytest.raises(EvaluationError):
            evaluator.state_probabilities("cpu1", N=1)
