"""Unit tests for the symbolic (closed-form) evaluator."""

import numpy as np
import pytest

from repro.core import (
    ReliabilityEvaluator,
    SymbolicEvaluator,
    attribute_environment,
    attribute_symbol,
)
from repro.errors import CyclicAssemblyError
from repro.model import (
    Assembly,
    CpuResource,
    FlowBuilder,
    ServiceRequest,
    perfect_connector,
)
from repro.model.parameters import FormalParameter
from repro.model.service import AnalyticInterface, CompositeService
from repro.scenarios import local_assembly, recursive_assembly, remote_assembly
from repro.symbolic import Environment, Parameter


class TestClosedForms:
    @pytest.mark.parametrize("build", [local_assembly, remote_assembly])
    def test_matches_numeric_evaluator(self, build):
        assembly = build()
        symbolic = SymbolicEvaluator(assembly).pfail_expression("search")
        numeric = ReliabilityEvaluator(assembly, check_domains=False)
        for n in (1, 7, 64, 311, 1000):
            env = {"elem": 1.0, "list": float(n), "res": 1.0}
            assert symbolic.evaluate(env) == pytest.approx(
                numeric.pfail("search", **env), rel=1e-12, abs=1e-15
            )

    def test_expression_over_formals_only(self):
        expr = SymbolicEvaluator(local_assembly()).pfail_expression("search")
        assert expr.free_parameters() <= {"elem", "list", "res"}

    def test_vectorized_evaluation(self):
        expr = SymbolicEvaluator(local_assembly()).pfail_expression("search")
        grid = np.linspace(1, 1000, 50)
        out = expr.evaluate({"elem": 1.0, "list": grid, "res": 1.0})
        assert out.shape == grid.shape
        assert np.all((out >= 0) & (out <= 1))

    def test_simple_service_attribute_substitution(self):
        assembly = local_assembly()
        expr = SymbolicEvaluator(assembly).pfail_expression("cpu1")
        # closed form of eq. (1) with lambda/s substituted numerically
        assert expr.free_parameters() == {"N"}
        assert expr.evaluate({"N": 0.0}) == pytest.approx(0.0)

    def test_reliability_expression_complements(self):
        evaluator = SymbolicEvaluator(local_assembly())
        pfail = evaluator.pfail_expression("search")
        reliability = evaluator.reliability_expression("search")
        env = {"elem": 1.0, "list": 100.0, "res": 1.0}
        assert reliability.evaluate(env) == pytest.approx(1 - pfail.evaluate(env))

    def test_memoized_per_service(self):
        evaluator = SymbolicEvaluator(local_assembly())
        first = evaluator.pfail_expression("search")
        second = evaluator.pfail_expression("search")
        assert first is second

    def test_cyclic_assembly_rejected(self):
        evaluator = SymbolicEvaluator(recursive_assembly())
        with pytest.raises(CyclicAssemblyError):
            evaluator.pfail_expression("A")


class TestSymbolicAttributes:
    def test_attributes_stay_free(self):
        evaluator = SymbolicEvaluator(local_assembly(), symbolic_attributes=True)
        expr = evaluator.pfail_expression("cpu1")
        assert attribute_symbol("cpu1", "failure_rate") in expr.free_parameters()
        assert attribute_symbol("cpu1", "speed") in expr.free_parameters()

    def test_attribute_environment_round_trip(self):
        assembly = remote_assembly()
        symbolic = SymbolicEvaluator(assembly, symbolic_attributes=True)
        expr = symbolic.pfail_expression("search")
        env = Environment(
            {**dict(attribute_environment(assembly)),
             "elem": 1.0, "list": 500.0, "res": 1.0}
        )
        numeric = ReliabilityEvaluator(assembly).pfail(
            "search", elem=1, list=500, res=1
        )
        assert expr.evaluate(env) == pytest.approx(numeric, rel=1e-12)

    def test_gamma_dependence_exposed(self):
        """The remote closed form must depend on the net12 failure rate."""
        evaluator = SymbolicEvaluator(remote_assembly(), symbolic_attributes=True)
        expr = evaluator.pfail_expression("search")
        assert attribute_symbol("net12", "failure_rate") in expr.free_parameters()


class TestLoopyFlows:
    def make_retry_assembly(self, retry=0.3):
        """A flow with a loop: work -> work with probability `retry`."""
        flow = (
            FlowBuilder(formals=("n",))
            .state("work", [ServiceRequest("cpu", actuals={"N": Parameter("n")})])
            .transition("Start", "work", 1)
            .transition("work", "work", retry)
            .transition("work", "End", 1 - retry)
            .build()
        )
        app = CompositeService(
            "app",
            AnalyticInterface(formal_parameters=(FormalParameter("n"),)),
            flow,
        )
        assembly = Assembly("retry")
        assembly.add_services(
            app, CpuResource("cpu1", 1e4, 1e-3).service(), perfect_connector("loc")
        )
        assembly.bind("app", "cpu", "cpu1", connector="loc")
        return assembly

    def test_gaussian_elimination_matches_numeric(self):
        assembly = self.make_retry_assembly()
        expr = SymbolicEvaluator(assembly).pfail_expression("app")
        numeric = ReliabilityEvaluator(assembly)
        for n in (10, 100, 1000):
            assert expr.evaluate({"n": float(n)}) == pytest.approx(
                numeric.pfail("app", n=n), rel=1e-10
            )

    def test_loop_closed_form(self):
        """With per-visit failure f and retry r the success probability is
        the geometric series (1-f)(1-r) / (1 - r(1-f))."""
        retry = 0.3
        assembly = self.make_retry_assembly(retry)
        expr = SymbolicEvaluator(assembly).pfail_expression("app")
        n = 500.0
        f = ReliabilityEvaluator(assembly).pfail("cpu1", N=n)
        expected_success = (1 - f) * (1 - retry) / (1 - retry * (1 - f))
        assert expr.evaluate({"n": n}) == pytest.approx(1 - expected_success, rel=1e-10)
