"""Unit tests for the hardened error paths: loader rejection of broken
documents, fixed-point divergence, and absorbing-chain failure
propagation through the evaluators.

Every path must end in a typed :class:`~repro.errors.ReproError`
subclass — never a ``KeyError``/``TypeError`` traceback leaking library
internals to a caller who fed it a broken model.
"""

import copy
import json

import pytest

from repro.core import FixedPointEvaluator, ReliabilityEvaluator
from repro.dsl import assembly_to_dict, dump_assembly
from repro.dsl.loader import assembly_from_dict, load_assembly
from repro.errors import (
    FixedPointDivergenceError,
    MarkovError,
    ModelError,
    NotAbsorbingError,
    ReproError,
)
from repro.scenarios import local_assembly, recursive_assembly


def healthy_document() -> dict:
    return assembly_to_dict(local_assembly())


class TestLoaderRejectsBrokenDocuments:
    def test_malformed_json(self):
        with pytest.raises(ModelError, match="not valid JSON"):
            load_assembly("{this is not json")

    def test_truncated_json(self):
        text = dump_assembly(local_assembly())
        for cut in (1, len(text) // 3, len(text) - 2):
            with pytest.raises(ModelError):
                load_assembly(text[:cut])

    def test_empty_string(self):
        with pytest.raises(ModelError):
            load_assembly("")

    def test_non_object_document(self):
        with pytest.raises(ModelError):
            load_assembly(json.dumps([1, 2, 3]))
        with pytest.raises(ModelError):
            load_assembly(json.dumps("just a string"))

    def test_non_dict_argument(self):
        with pytest.raises(ModelError):
            assembly_from_dict(None)

    def test_service_entry_must_be_a_dict(self):
        doc = healthy_document()
        doc["services"][0] = "not-a-service"
        with pytest.raises(ModelError):
            assembly_from_dict(doc)

    def test_service_entry_needs_a_name(self):
        doc = healthy_document()
        del doc["services"][0]["name"]
        with pytest.raises(ModelError):
            assembly_from_dict(doc)

    def test_binding_entry_must_be_a_dict(self):
        doc = healthy_document()
        doc["bindings"][0] = ["search", "slot", "provider"]
        with pytest.raises(ModelError):
            assembly_from_dict(doc)

    def test_binding_entry_needs_all_fields(self):
        for missing in ("consumer", "slot", "provider"):
            doc = healthy_document()
            del doc["bindings"][0][missing]
            with pytest.raises(ModelError):
                assembly_from_dict(doc)

    def test_loader_errors_are_repro_errors(self):
        """Callers catch one root type for the whole load path."""
        with pytest.raises(ReproError):
            load_assembly("{")


class TestFixedPointDivergence:
    def test_sweep_starved_iteration_raises_divergence(self):
        """The recursive scenario needs dozens of Kleene sweeps; a cap of
        2 must surface as FixedPointDivergenceError, not a wrong number."""
        evaluator = FixedPointEvaluator(recursive_assembly(), max_iterations=2)
        with pytest.raises(FixedPointDivergenceError) as excinfo:
            evaluator.pfail("A", size=1)
        assert "2" in str(excinfo.value)

    def test_divergence_is_an_evaluation_error(self):
        from repro.errors import EvaluationError

        assert issubclass(FixedPointDivergenceError, EvaluationError)


class TestNotAbsorbingPropagation:
    def limbo_assembly(self):
        """local assembly whose 'search' flow gains a two-state cycle that
        is reachable from Start but can never reach End and never fails —
        structurally valid (End stays reachable), yet the failure-augmented
        chain traps probability mass forever, so the absorbing analysis is
        ill-posed."""
        doc = healthy_document()
        flow = next(
            s for s in doc["services"] if s.get("name") == "search"
        )["flow"]
        flow["states"].extend(
            [{"name": "limbo1", "requests": []},
             {"name": "limbo2", "requests": []}]
        )
        one = {"kind": "const", "value": 1.0}
        for t in flow["transitions"]:
            if t["source"] == "Start" and t["target"] == "sort":
                t["probability"] = {"kind": "const", "value": 0.5}
        flow["transitions"].extend(
            [
                {"source": "Start", "target": "limbo1",
                 "probability": {"kind": "const", "value": 0.4}},
                {"source": "limbo1", "target": "limbo2", "probability": one},
                {"source": "limbo2", "target": "limbo1", "probability": one},
            ]
        )
        return assembly_from_dict(doc)

    def test_unvalidated_evaluation_raises_markov_error(self):
        """With validation off, the broken chain reaches the absorbing
        solver, which must refuse with a typed Markov-layer error."""
        evaluator = ReliabilityEvaluator(self.limbo_assembly(), validate=False)
        with pytest.raises(MarkovError):
            evaluator.pfail("search", elem=1, list=500, res=1)

    def test_not_absorbing_is_a_markov_error(self):
        assert issubclass(NotAbsorbingError, MarkovError)

    def test_robust_evaluator_refuses_with_typed_error(self):
        """The hardened front door also never crashes on it: either a
        validation refusal or an all-tiers failure, both typed."""
        from repro.runtime import EvaluationBudget, RobustEvaluator

        with pytest.raises(ReproError):
            RobustEvaluator(
                self.limbo_assembly(),
                budget=EvaluationBudget(deadline=5.0, max_trials=500),
                trials=200,
            ).evaluate("search", elem=1, list=500, res=1)
