"""Unit tests for the hardened error paths: loader rejection of broken
documents, fixed-point divergence, and absorbing-chain failure
propagation through the evaluators.

Every path must end in a typed :class:`~repro.errors.ReproError`
subclass — never a ``KeyError``/``TypeError`` traceback leaking library
internals to a caller who fed it a broken model.
"""

import copy
import json

import pytest

from repro.core import FixedPointEvaluator, ReliabilityEvaluator
from repro.dsl import assembly_to_dict, dump_assembly
from repro.dsl.loader import assembly_from_dict, load_assembly
from repro.errors import (
    EvaluationError,
    FixedPointDivergenceError,
    MarkovError,
    ModelError,
    NotAbsorbingError,
    ReproError,
    error_chain,
    format_error_chain,
)
from repro.scenarios import local_assembly, recursive_assembly


def healthy_document() -> dict:
    return assembly_to_dict(local_assembly())


class TestLoaderRejectsBrokenDocuments:
    def test_malformed_json(self):
        with pytest.raises(ModelError, match="not valid JSON"):
            load_assembly("{this is not json")

    def test_truncated_json(self):
        text = dump_assembly(local_assembly())
        for cut in (1, len(text) // 3, len(text) - 2):
            with pytest.raises(ModelError):
                load_assembly(text[:cut])

    def test_empty_string(self):
        with pytest.raises(ModelError):
            load_assembly("")

    def test_non_object_document(self):
        with pytest.raises(ModelError):
            load_assembly(json.dumps([1, 2, 3]))
        with pytest.raises(ModelError):
            load_assembly(json.dumps("just a string"))

    def test_non_dict_argument(self):
        with pytest.raises(ModelError):
            assembly_from_dict(None)

    def test_service_entry_must_be_a_dict(self):
        doc = healthy_document()
        doc["services"][0] = "not-a-service"
        with pytest.raises(ModelError):
            assembly_from_dict(doc)

    def test_service_entry_needs_a_name(self):
        doc = healthy_document()
        del doc["services"][0]["name"]
        with pytest.raises(ModelError):
            assembly_from_dict(doc)

    def test_binding_entry_must_be_a_dict(self):
        doc = healthy_document()
        doc["bindings"][0] = ["search", "slot", "provider"]
        with pytest.raises(ModelError):
            assembly_from_dict(doc)

    def test_binding_entry_needs_all_fields(self):
        for missing in ("consumer", "slot", "provider"):
            doc = healthy_document()
            del doc["bindings"][0][missing]
            with pytest.raises(ModelError):
                assembly_from_dict(doc)

    def test_loader_errors_are_repro_errors(self):
        """Callers catch one root type for the whole load path."""
        with pytest.raises(ReproError):
            load_assembly("{")


class TestFixedPointDivergence:
    def test_sweep_starved_iteration_raises_divergence(self):
        """The recursive scenario needs dozens of Kleene sweeps; a cap of
        2 must surface as FixedPointDivergenceError, not a wrong number."""
        evaluator = FixedPointEvaluator(recursive_assembly(), max_iterations=2)
        with pytest.raises(FixedPointDivergenceError) as excinfo:
            evaluator.pfail("A", size=1)
        assert "2" in str(excinfo.value)

    def test_divergence_is_an_evaluation_error(self):
        from repro.errors import EvaluationError

        assert issubclass(FixedPointDivergenceError, EvaluationError)


class TestNotAbsorbingPropagation:
    def limbo_assembly(self):
        """local assembly whose 'search' flow gains a two-state cycle that
        is reachable from Start but can never reach End and never fails —
        structurally valid (End stays reachable), yet the failure-augmented
        chain traps probability mass forever, so the absorbing analysis is
        ill-posed."""
        doc = healthy_document()
        flow = next(
            s for s in doc["services"] if s.get("name") == "search"
        )["flow"]
        flow["states"].extend(
            [{"name": "limbo1", "requests": []},
             {"name": "limbo2", "requests": []}]
        )
        one = {"kind": "const", "value": 1.0}
        for t in flow["transitions"]:
            if t["source"] == "Start" and t["target"] == "sort":
                t["probability"] = {"kind": "const", "value": 0.5}
        flow["transitions"].extend(
            [
                {"source": "Start", "target": "limbo1",
                 "probability": {"kind": "const", "value": 0.4}},
                {"source": "limbo1", "target": "limbo2", "probability": one},
                {"source": "limbo2", "target": "limbo1", "probability": one},
            ]
        )
        return assembly_from_dict(doc)

    def test_unvalidated_evaluation_raises_markov_error(self):
        """With validation off, the broken chain reaches the absorbing
        solver, which must refuse with a typed Markov-layer error."""
        evaluator = ReliabilityEvaluator(self.limbo_assembly(), validate=False)
        with pytest.raises(MarkovError):
            evaluator.pfail("search", elem=1, list=500, res=1)

    def test_not_absorbing_is_a_markov_error(self):
        assert issubclass(NotAbsorbingError, MarkovError)

    def test_robust_evaluator_refuses_with_typed_error(self):
        """The hardened front door also never crashes on it: either a
        validation refusal or an all-tiers failure, both typed."""
        from repro.runtime import EvaluationBudget, RobustEvaluator

        with pytest.raises(ReproError):
            RobustEvaluator(
                self.limbo_assembly(),
                budget=EvaluationBudget(deadline=5.0, max_trials=500),
                trials=200,
            ).evaluate("search", elem=1, list=500, res=1)


def _nested_error() -> EvaluationError:
    """An EvaluationError with a two-deep explicit cause chain."""
    try:
        try:
            raise KeyError("missing-state")
        except KeyError as root:
            raise MarkovError("chain rebuild failed") from root
    except MarkovError as mid:
        return_value = EvaluationError("evaluation failed")
        return_value.__cause__ = mid
        return return_value


class TestErrorChainHelpers:
    def test_chain_walks_causes_outermost_first(self):
        chain = error_chain(_nested_error())
        assert chain == (
            "EvaluationError: evaluation failed",
            "MarkovError: chain rebuild failed",
            "KeyError: 'missing-state'",
        )

    def test_chain_follows_implicit_context(self):
        try:
            try:
                raise ValueError("original")
            except ValueError:
                raise EvaluationError("while handling")  # implicit __context__
        except EvaluationError as exc:
            assert error_chain(exc) == (
                "EvaluationError: while handling",
                "ValueError: original",
            )

    def test_suppressed_context_is_skipped(self):
        try:
            try:
                raise ValueError("hidden")
            except ValueError:
                raise EvaluationError("standalone") from None
        except EvaluationError as exc:
            assert error_chain(exc) == ("EvaluationError: standalone",)

    def test_chain_terminates_on_cycles(self):
        a = EvaluationError("a")
        b = EvaluationError("b")
        a.__cause__ = b
        b.__cause__ = a
        assert error_chain(a) == (
            "EvaluationError: a", "EvaluationError: b"
        )

    def test_format_flattens_to_one_line(self):
        assert format_error_chain(_nested_error()) == (
            "EvaluationError: evaluation failed "
            "(caused by MarkovError: chain rebuild failed; "
            "caused by KeyError: 'missing-state')"
        )

    def test_format_single_error_has_no_suffix(self):
        assert format_error_chain(EvaluationError("flat")) == (
            "EvaluationError: flat"
        )


class TestCauseChainIsolationPaths:
    """The error-isolation boundaries must propagate cause chains, not
    swallow them (the pre-fix behaviour kept only the outermost message)."""

    def test_fuzz_case_record_keeps_root_cause(self, monkeypatch):
        """A nested failure inside a fuzz case lands in the case record
        with its full cause chain."""
        from repro.robustness import harness as harness_module
        from repro.robustness.harness import run_fuzz_case
        from repro.robustness.mutator import ModelMutator

        mutation = ModelMutator(assembly_to_dict(local_assembly())).mutate()

        def raising_evaluator(*args, **kwargs):
            raise _nested_error()

        monkeypatch.setattr(
            harness_module, "RobustEvaluator", raising_evaluator
        )
        case = run_fuzz_case(
            0, mutation, service="search",
            actuals={"elem": 1.0, "list": 5.0, "res": 1.0},
            seed=0, trials=100, deadline=5.0,
        )
        assert case.status == "typed-error"
        assert "caused by MarkovError: chain rebuild failed" in case.error
        assert "caused by KeyError: 'missing-state'" in case.error

    def test_worker_failure_transports_cause_chain(self):
        from repro.engine.parallel import WorkerFailure, rebuild_error

        failure = WorkerFailure.from_error(_nested_error())
        assert failure.cause_chain == (
            "MarkovError: chain rebuild failed",
            "KeyError: 'missing-state'",
        )
        rebuilt = rebuild_error(failure)
        assert isinstance(rebuilt, EvaluationError)
        notes = getattr(rebuilt, "__notes__", [])
        assert "caused by MarkovError: chain rebuild failed" in notes
        assert "caused by KeyError: 'missing-state'" in notes

    def test_worker_failure_survives_pickling(self):
        import pickle

        from repro.engine.parallel import WorkerFailure, rebuild_error

        failure = pickle.loads(
            pickle.dumps(WorkerFailure.from_error(_nested_error()))
        )
        assert failure.cause_chain  # the chain crosses the boundary intact
        rebuilt = rebuild_error(failure)
        assert getattr(rebuilt, "__notes__", [])

    def test_flat_error_round_trips_without_notes(self):
        from repro.engine.parallel import WorkerFailure, rebuild_error

        failure = WorkerFailure.from_error(EvaluationError("flat"))
        assert failure.cause_chain == ()
        rebuilt = rebuild_error(failure)
        assert not getattr(rebuilt, "__notes__", [])
