"""Unit tests for the DSL serialization layer."""

import json

import pytest

from repro.dsl import (
    SCHEMA_VERSION,
    assembly_from_dict,
    assembly_to_dict,
    dump_assembly,
    load_assembly,
    service_from_dict,
    service_to_dict,
)
from repro.errors import ModelError
from repro.model import CpuResource, KOfNCompletion, perfect_connector
from repro.scenarios import (
    booking_assembly,
    local_assembly,
    pipeline_assembly,
    remote_assembly,
)


class TestServiceSerialization:
    def test_simple_service_round_trip(self):
        original = CpuResource("cpu1", 1e6, 1e-7).service()
        data = service_to_dict(original)
        assert data["schema"] == SCHEMA_VERSION
        rebuilt = service_from_dict(data)
        assert rebuilt.name == "cpu1"
        assert rebuilt.pfail(N=1000) == original.pfail(N=1000)
        assert rebuilt.interface.attributes == original.interface.attributes

    def test_connector_flag_round_trips(self):
        original = perfect_connector("loc1")
        rebuilt = service_from_dict(service_to_dict(original))
        assert rebuilt.is_connector

    def test_composite_service_round_trip(self):
        assembly = local_assembly()
        original = assembly.service("search")
        rebuilt = service_from_dict(service_to_dict(original))
        assert rebuilt.requirements() == original.requirements()
        assert [s.name for s in rebuilt.flow.states] == [
            s.name for s in original.flow.states
        ]

    def test_completion_models_round_trip(self):
        assembly = pipeline_assembly()
        publish = assembly.service("publish")
        rebuilt = service_from_dict(service_to_dict(publish))
        deliver = rebuilt.flow.state("deliver")
        assert isinstance(deliver.completion, KOfNCompletion)
        assert deliver.completion.k == 2

    def test_sharing_flag_round_trips(self):
        assembly = pipeline_assembly()
        rebuilt = service_from_dict(service_to_dict(assembly.service("transcode")))
        assert rebuilt.flow.state("encode").shared

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            service_from_dict({"kind": "quantum", "name": "q"})


class TestExpressionForms:
    def test_string_expressions_accepted(self):
        data = {
            "kind": "simple",
            "name": "widget",
            "interface": {
                "parameters": [{"name": "n", "domain": {"kind": "integer", "low": 0}}],
                "attributes": {"rate": 0.001},
            },
            "failure_probability": "1 - (1 - rate) ** n",
        }
        service = service_from_dict(data)
        assert service.pfail(n=10) == pytest.approx(1 - 0.999**10)

    def test_numeric_literal_expressions_accepted(self):
        data = {
            "kind": "simple",
            "name": "flaky",
            "interface": {"parameters": []},
            "failure_probability": 0.25,
        }
        assert service_from_dict(data).pfail() == 0.25

    def test_bad_expression_rejected(self):
        with pytest.raises(ModelError):
            service_from_dict(
                {
                    "kind": "simple",
                    "name": "x",
                    "interface": {},
                    "failure_probability": ["not", "an", "expr"],
                }
            )


class TestAssemblySerialization:
    @pytest.mark.parametrize(
        "build", [local_assembly, remote_assembly, booking_assembly, pipeline_assembly]
    )
    def test_round_trip_preserves_semantics(self, build):
        from repro.core import ReliabilityEvaluator

        original = build()
        rebuilt = assembly_from_dict(assembly_to_dict(original))
        assert rebuilt.name == original.name
        assert {s.name for s in rebuilt.services} == {
            s.name for s in original.services
        }
        top = {
            "local": ("search", {"elem": 1, "list": 300, "res": 1}),
            "remote": ("search", {"elem": 1, "list": 300, "res": 1}),
            "booking": ("booking", {"itinerary": 4}),
            "media-pipeline": ("publish", {"mb": 50}),
        }[original.name]
        service, actuals = top
        assert ReliabilityEvaluator(rebuilt).pfail(service, **actuals) == (
            ReliabilityEvaluator(original).pfail(service, **actuals)
        )

    def test_json_text_round_trip(self):
        original = local_assembly()
        text = dump_assembly(original)
        json.loads(text)  # valid JSON
        rebuilt = load_assembly(text)
        assert {b.slot for b in rebuilt.bindings} == {
            b.slot for b in original.bindings
        }

    def test_infinity_bounds_serialized_as_null(self):
        data = assembly_to_dict(local_assembly())
        text = json.dumps(data)  # would raise on raw inf with allow_nan=False
        assert "Infinity" not in text

    def test_binding_connector_actuals_round_trip(self):
        original = local_assembly()
        rebuilt = assembly_from_dict(assembly_to_dict(original))
        binding = rebuilt.binding("search", "sort")
        assert set(binding.connector_actuals) == {"ip", "op"}
        assert binding.connector_actuals["ip"].evaluate(
            {"elem": 2.0, "list": 5.0}
        ) == 7.0
