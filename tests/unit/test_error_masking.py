"""Unit tests for the error-masking (propagation) extension.

The paper's section 6 lists releasing the fail-stop assumption "to deal
also with error propagation aspects" as future work.  The extension gives
each request a masking probability ``m``: a failed request still counts as
fulfilled with probability ``m``.  ``m = 0`` is exactly the paper's
semantics — asserted everywhere below — and under sharing a masked
external failure still destroys the shared service for *other* requests.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ReliabilityEvaluator,
    SymbolicEvaluator,
    or_sharing,
    state_failure_probability,
)
from repro.errors import ModelError
from repro.model import (
    OR,
    AND,
    AnalyticInterface,
    Assembly,
    CompositeService,
    FlowBuilder,
    ServiceRequest,
    SimpleService,
    perfect_connector,
)
from repro.simulation import MonteCarloSimulator
from repro.symbolic import Constant

probabilities = st.floats(min_value=0.0, max_value=1.0)


class TestStateFailureWithMasking:
    INTERNAL = [0.05, 0.02]
    EXTERNAL = [0.1, 0.03]

    def test_zero_masking_is_paper_semantics(self):
        for shared in (False, True):
            for completion in (AND, OR):
                base = state_failure_probability(
                    completion, shared, self.INTERNAL, self.EXTERNAL
                )
                masked = state_failure_probability(
                    completion, shared, self.INTERNAL, self.EXTERNAL, [0.0, 0.0]
                )
                assert masked == pytest.approx(base, abs=1e-15)

    def test_full_masking_never_fails(self):
        for shared in (False, True):
            value = state_failure_probability(
                AND, shared, self.INTERNAL, self.EXTERNAL, [1.0, 1.0]
            )
            assert value == pytest.approx(0.0, abs=1e-12)

    def test_masking_monotone(self):
        values = [
            state_failure_probability(
                AND, False, self.INTERNAL, self.EXTERNAL, [m, m]
            )
            for m in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        for lower, higher in zip(values[1:], values):
            assert lower <= higher + 1e-12

    def test_masking_restores_or_redundancy_under_sharing(self):
        """The practical point of masking: a caller that absorbs the
        shared service's failure recovers part of the eq. (12) loss."""
        unmasked = state_failure_probability(
            OR, True, self.INTERNAL, self.EXTERNAL
        )
        masked = state_failure_probability(
            OR, True, self.INTERNAL, self.EXTERNAL, [0.5, 0.5]
        )
        assert masked < unmasked

    def test_closed_form_single_request(self):
        """n=1: p = (1-m) * (1 - (1-pi)(1-pe)) exactly."""
        pi, pe, m = 0.1, 0.2, 0.3
        expected = (1 - m) * (1 - (1 - pi) * (1 - pe))
        assert state_failure_probability(
            AND, False, [pi], [pe], [m]
        ) == pytest.approx(expected, abs=1e-15)

    def test_sharing_or_closed_form(self):
        """n=2 shared OR with masking m: p = (1-noext)*prod(1-m_j)
        + noext * prod((1-m_j) pi_j)."""
        pi = [0.2, 0.3]
        pe = [0.1, 0.05]
        m = [0.4, 0.6]
        no_ext = (1 - pe[0]) * (1 - pe[1])
        under_ext = (1 - m[0]) * (1 - m[1])
        internal_only = (1 - m[0]) * pi[0] * (1 - m[1]) * pi[1]
        expected = (1 - no_ext) * under_ext + no_ext * internal_only
        assert state_failure_probability(
            OR, True, pi, pe, m
        ) == pytest.approx(expected, abs=1e-15)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            state_failure_probability(AND, False, [0.1], [0.1], [0.1, 0.2])

    @given(
        st.lists(probabilities, min_size=2, max_size=4),
        st.lists(probabilities, min_size=2, max_size=4),
        st.lists(probabilities, min_size=2, max_size=4),
    )
    @settings(max_examples=200)
    def test_masking_never_hurts(self, internal, external, masking):
        n = min(len(internal), len(external), len(masking))
        internal, external, masking = internal[:n], external[:n], masking[:n]
        base = state_failure_probability(OR, True, internal, external)
        masked = state_failure_probability(OR, True, internal, external, masking)
        assert masked <= base + 1e-12


def masked_assembly(masking: float, shared: bool = True) -> Assembly:
    """Two OR-redundant requests to one flaky provider, with masking."""
    flow = (
        FlowBuilder(formals=())
        .state(
            "q",
            [
                ServiceRequest(
                    "db", actuals={}, internal_failure=Constant(0.05),
                    masking=Constant(masking),
                )
                for _ in range(2)
            ],
            completion=OR,
            shared=shared,
        )
        .sequence("q")
        .build()
    )
    app = CompositeService("app", AnalyticInterface(), flow)
    assembly = Assembly(f"masked-{masking}")
    assembly.add_services(
        app,
        SimpleService("db", AnalyticInterface(), Constant(0.2)),
        perfect_connector("loc"),
    )
    assembly.bind("app", "db", "db", connector="loc")
    return assembly


class TestMaskingThroughTheStack:
    def test_evaluator_closed_form(self):
        pfail = ReliabilityEvaluator(masked_assembly(0.5)).pfail("app")
        expected = state_failure_probability(
            OR, True, [0.05, 0.05], [0.2, 0.2], [0.5, 0.5]
        )
        assert pfail == pytest.approx(expected, abs=1e-12)

    def test_symbolic_matches_numeric(self):
        for masking in (0.0, 0.3, 0.9):
            assembly = masked_assembly(masking)
            numeric = ReliabilityEvaluator(assembly).pfail("app")
            expression = SymbolicEvaluator(assembly).pfail_expression("app")
            assert float(expression.evaluate({})) == pytest.approx(
                numeric, abs=1e-12
            )

    def test_simulator_consistent(self):
        for masking in (0.0, 0.5):
            assembly = masked_assembly(masking)
            analytic = ReliabilityEvaluator(assembly).pfail("app")
            result = MonteCarloSimulator(assembly, seed=11).estimate_pfail(
                "app", 30_000
            )
            assert result.consistent_with(analytic), (masking, analytic, result)

    def test_dsl_round_trip_preserves_masking(self):
        from repro.dsl import dump_assembly, load_assembly

        assembly = masked_assembly(0.42)
        rebuilt = load_assembly(dump_assembly(assembly))
        assert ReliabilityEvaluator(rebuilt).pfail("app") == pytest.approx(
            ReliabilityEvaluator(assembly).pfail("app"), abs=1e-15
        )

    def test_masking_recovers_reliability_at_assembly_level(self):
        none = ReliabilityEvaluator(masked_assembly(0.0)).pfail("app")
        half = ReliabilityEvaluator(masked_assembly(0.5)).pfail("app")
        full = ReliabilityEvaluator(masked_assembly(1.0)).pfail("app")
        assert none > half > full
        assert full == pytest.approx(0.0, abs=1e-12)
