"""Unit tests for resource factories (eqs. 1, 2, 14)."""

import math

import pytest

from repro.errors import ModelError
from repro.model import (
    CpuResource,
    DeviceResource,
    FormalParameter,
    NetworkResource,
    SoftwareComponent,
)
from repro.symbolic import Constant, Parameter


class TestCpuResource:
    def test_equation_1(self):
        cpu = CpuResource("cpu1", speed=1e6, failure_rate=1e-6).service()
        n = 5e4
        assert cpu.pfail(N=n) == pytest.approx(1 - math.exp(-1e-6 * n / 1e6), rel=1e-12)

    def test_zero_work_never_fails(self):
        cpu = CpuResource("cpu1", speed=1e6, failure_rate=1e-3).service()
        assert cpu.pfail(N=0) == 0.0

    def test_monotone_in_workload(self):
        cpu = CpuResource("cpu1", speed=100.0, failure_rate=0.1).service()
        assert cpu.pfail(N=10) < cpu.pfail(N=100) < cpu.pfail(N=1000)

    def test_zero_failure_rate_is_perfect(self):
        cpu = CpuResource("cpu1", speed=1.0, failure_rate=0.0).service()
        assert cpu.pfail(N=10**9) == 0.0

    def test_invalid_speed_rejected(self):
        with pytest.raises(ModelError):
            CpuResource("cpu1", speed=0.0, failure_rate=1e-6)

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            CpuResource("cpu1", speed=1.0, failure_rate=-1e-6)

    def test_published_attributes(self):
        cpu = CpuResource("cpu1", speed=2e6, failure_rate=3e-7).service()
        assert cpu.interface.attributes["speed"] == 2e6
        assert cpu.interface.attributes["failure_rate"] == 3e-7


class TestNetworkResource:
    def test_equation_2(self):
        net = NetworkResource("net12", bandwidth=1e3, failure_rate=5e-3).service()
        b = 400.0
        assert net.pfail(B=b) == pytest.approx(1 - math.exp(-5e-3 * b / 1e3), rel=1e-12)

    def test_zero_bytes_never_fails(self):
        net = NetworkResource("net12", bandwidth=1e3, failure_rate=0.5).service()
        assert net.pfail(B=0) == 0.0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ModelError):
            NetworkResource("net12", bandwidth=-1.0, failure_rate=0.1)


class TestDeviceResource:
    def test_custom_failure_expression(self):
        device = DeviceResource(
            "printer",
            formal_parameters=(FormalParameter("pages"),),
            failure_probability=Constant(1.0)
            - (Constant(0.999)) ** Parameter("pages"),
        ).service()
        assert device.pfail(pages=0) == 0.0
        assert device.pfail(pages=100) == pytest.approx(1 - 0.999**100)

    def test_attributes_available_to_expression(self):
        device = DeviceResource(
            "sensor",
            formal_parameters=(FormalParameter("samples"),),
            failure_probability=Parameter("drop_rate") * Parameter("samples"),
            attributes={"drop_rate": 1e-4},
        ).service()
        assert device.pfail(samples=10) == pytest.approx(1e-3)


class TestSoftwareComponent:
    def test_equation_14(self):
        phi = 1e-6
        component = SoftwareComponent("sorter", phi)
        expr = component.internal_failure(Parameter("ops"))
        assert expr.evaluate({"ops": 1000}) == pytest.approx(1 - (1 - phi) ** 1000)

    def test_zero_operations_never_fail(self):
        expr = SoftwareComponent("c", 1e-3).internal_failure(Constant(0.0))
        assert expr.evaluate({}) == 0.0

    def test_rate_must_be_probability(self):
        with pytest.raises(ModelError):
            SoftwareComponent("c", 1.5)
        with pytest.raises(ModelError):
            SoftwareComponent("c", -0.1)

    def test_repr(self):
        assert "phi" in repr(SoftwareComponent("c", 1e-6))
