"""Plan cache correctness: hits are free and never stale.

The contract under test (see docs/performance_guide.md):

- same structural fingerprint ⇒ the cached plan is reused and produces the
  *identical* ``Pfail`` with **zero** re-derivations — asserted against
  the solve/derivation counters, not timings;
- any attribute mutation ⇒ a different fingerprint ⇒ a cache miss;
- a warm cache performs at least 5x fewer solves than the cold path on a
  repeated batch workload.
"""

import pytest

from repro.core.evaluator import ReliabilityEvaluator
from repro.core.symbolic_evaluator import SymbolicEvaluator
from repro.engine import (
    BatchEngine,
    PlanCache,
    compilation_count,
    compile_plan,
    plan_key,
)
from repro.errors import EvaluationError
from repro.scenarios import local_assembly, recursive_assembly, remote_assembly
from repro.scenarios.search_sort import SearchSortParameters

POINT = {"elem": 1.0, "list": 500.0, "res": 1.0}


class TestCacheHits:
    def test_same_fingerprint_identical_pfail_zero_rederivations(self):
        cache = PlanCache()
        first = cache.get_or_compile(local_assembly(), "search")
        expected = first.pfail(POINT)

        before = compilation_count()
        # a *rebuilt* structurally identical assembly: same fingerprint
        again = cache.get_or_compile(local_assembly(), "search")
        assert compilation_count() == before  # zero re-derivations
        assert again is first
        assert again.pfail(POINT) == expected

    def test_cached_pfail_matches_recursive_evaluator_exactly(self):
        cache = PlanCache()
        plan = cache.get_or_compile(local_assembly(), "search")
        reference = ReliabilityEvaluator(local_assembly()).pfail("search", **POINT)
        assert plan.pfail(POINT) == reference

    def test_symbolic_plan_evaluation_performs_no_chain_solves(self):
        plan = compile_plan(local_assembly(), "search")
        evaluator = ReliabilityEvaluator(local_assembly())
        evaluator.pfail("search", **POINT)
        assert evaluator.solve_count > 0  # the numeric path does solve
        solves_before = evaluator.solve_count
        plan.pfail(POINT)  # the compiled plan touches no evaluator
        assert evaluator.solve_count == solves_before

    def test_derivation_counter_counts_symbolic_work(self):
        evaluator = SymbolicEvaluator(local_assembly())
        assert evaluator.derivation_count == 0
        evaluator.pfail_expression("search")
        first = evaluator.derivation_count
        assert first > 0
        evaluator.pfail_expression("search")  # memoized: no new derivations
        assert evaluator.derivation_count == first


class TestCacheMisses:
    def test_attribute_mutation_is_a_miss(self):
        cache = PlanCache()
        base = cache.get_or_compile(local_assembly(), "search")
        mutated = cache.get_or_compile(
            local_assembly(SearchSortParameters(phi_sort1=5e-6)), "search"
        )
        assert mutated is not base
        assert cache.stats.misses == 2
        assert base.fingerprint != mutated.fingerprint
        # and the mutated plan answers for the mutated model
        assert mutated.pfail(POINT) != base.pfail(POINT)

    def test_distinct_services_cache_separately(self):
        cache = PlanCache()
        cache.get_or_compile(local_assembly(), "search")
        cache.get_or_compile(local_assembly(), "sort1")
        assert cache.stats.misses == 2

    def test_symbolic_attributes_flag_caches_separately(self):
        cache = PlanCache()
        assembly = local_assembly()
        bound = cache.get_or_compile(assembly, "search")
        free = cache.get_or_compile(assembly, "search", symbolic_attributes=True)
        assert bound is not free
        assert plan_key(assembly, "search", False) != plan_key(
            assembly, "search", True
        )


class TestWarmVsCold:
    def test_warm_cache_at_least_5x_fewer_solves_than_cold(self):
        points = [
            {"elem": 1.0, "list": float(v), "res": 1.0}
            for v in (1, 100, 250, 500, 1000)
        ]
        passes = 5

        cold = BatchEngine(jobs=1, cache=False)
        before = compilation_count()
        for _ in range(passes):
            assert cold.evaluate(local_assembly(), "search", points).ok
        cold_solves = compilation_count() - before

        warm = BatchEngine(jobs=1, cache=PlanCache())
        before = compilation_count()
        for _ in range(passes):
            assert warm.evaluate(local_assembly(), "search", points).ok
        warm_solves = compilation_count() - before

        assert warm_solves == 1  # one warm-up compilation, ever
        assert cold_solves >= 5 * warm_solves


class TestEvictionAndStats:
    def test_lru_eviction_bounds_the_cache(self):
        cache = PlanCache(max_size=1)
        cache.get_or_compile(local_assembly(), "search")
        cache.get_or_compile(remote_assembly(), "search")
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # the evicted (local) plan now misses again
        cache.get_or_compile(local_assembly(), "search")
        assert cache.stats.misses == 3
        assert cache.stats.hits == 0

    def test_hit_rate_and_snapshot(self):
        cache = PlanCache()
        assembly = local_assembly()
        cache.get_or_compile(assembly, "search")
        cache.get_or_compile(assembly, "search")
        assert cache.stats.hit_rate == pytest.approx(0.5)
        snapshot = cache.stats.snapshot()
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1

    def test_clear_empties_but_keeps_counting(self):
        cache = PlanCache()
        cache.get_or_compile(local_assembly(), "search")
        cache.clear()
        assert len(cache) == 0
        cache.get_or_compile(local_assembly(), "search")
        assert cache.stats.misses == 2


class TestBackends:
    def test_cyclic_assembly_falls_back_to_robust_backend(self):
        plan = compile_plan(recursive_assembly(), "A")
        assert plan.backend == "robust"
        assert 0.0 <= plan.pfail({"size": 1.0}) <= 1.0

    def test_symbolic_backend_refuses_cyclic_when_forced(self):
        from repro.errors import CyclicAssemblyError, SymbolicError

        with pytest.raises((CyclicAssemblyError, SymbolicError)):
            compile_plan(recursive_assembly(), "A", backend="symbolic")

    def test_symbolic_attributes_require_symbolic_backend(self):
        with pytest.raises(EvaluationError):
            compile_plan(
                recursive_assembly(), "A", symbolic_attributes=True
            )
