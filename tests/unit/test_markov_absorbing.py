"""Unit tests for absorbing-chain analysis (the eq. 3 engine)."""

import numpy as np
import pytest

from repro.errors import NotAbsorbingError, UnknownStateError
from repro.markov import (
    AbsorbingChainAnalysis,
    ChainBuilder,
    DiscreteTimeMarkovChain,
    absorption_probability,
)


def fail_end_chain(f: float) -> DiscreteTimeMarkovChain:
    """Start -> work -> {End w.p. 1-f, Fail w.p. f} — the minimal
    failure-augmented flow shape."""
    return (
        ChainBuilder()
        .add_edge("Start", "work", 1.0)
        .add_edge("work", "End", 1.0 - f)
        .add_edge("work", "Fail", f)
        .build()
    )


class TestAbsorptionProbabilities:
    def test_simple_split(self):
        analysis = AbsorbingChainAnalysis(fail_end_chain(0.25))
        assert analysis.absorption_probability("Start", "End") == pytest.approx(0.75)
        assert analysis.absorption_probability("Start", "Fail") == pytest.approx(0.25)

    def test_distribution_sums_to_one(self):
        analysis = AbsorbingChainAnalysis(fail_end_chain(0.4))
        dist = analysis.absorption_distribution("Start")
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_absorbing_start(self):
        analysis = AbsorbingChainAnalysis(fail_end_chain(0.5))
        assert analysis.absorption_probability("End", "End") == 1.0
        assert analysis.absorption_probability("End", "Fail") == 0.0

    def test_absorption_into_transient_is_zero(self):
        analysis = AbsorbingChainAnalysis(fail_end_chain(0.5))
        assert analysis.absorption_probability("Start", "work") == 0.0

    def test_unknown_states_raise(self):
        analysis = AbsorbingChainAnalysis(fail_end_chain(0.5))
        with pytest.raises(UnknownStateError):
            analysis.absorption_probability("nope", "End")
        with pytest.raises(UnknownStateError):
            analysis.absorption_probability("Start", "nope")

    def test_geometric_loop(self):
        """A retry loop: work -> work w.p. r, -> End w.p. (1-r)f', -> Fail.
        Absorption in End = (1-f)(1-r) / (1-r) ... checked against the
        geometric-series closed form."""
        r, f = 0.3, 0.1
        chain = (
            ChainBuilder()
            .add_edge("Start", "work", 1.0)
            .add_edge("work", "work", r)
            .add_edge("work", "End", (1 - r) * (1 - f))
            .add_edge("work", "Fail", (1 - r) * f)
            .build()
        )
        analysis = AbsorbingChainAnalysis(chain)
        # per visit: P(End | leave) = 1 - f, independent of r
        assert analysis.absorption_probability("Start", "End") == pytest.approx(1 - f)

    def test_convenience_wrapper(self):
        assert absorption_probability(fail_end_chain(0.2), "Start", "End") == (
            pytest.approx(0.8)
        )


class TestDegenerateChains:
    def test_no_absorbing_state_raises(self):
        chain = DiscreteTimeMarkovChain(
            ["a", "b"], np.array([[0.0, 1.0], [1.0, 0.0]])
        )
        with pytest.raises(NotAbsorbingError):
            AbsorbingChainAnalysis(chain)

    def test_trapped_transient_raises(self):
        """A transient pair cycling forever next to an unreachable
        absorbing state makes (I - Q) singular."""
        chain = DiscreteTimeMarkovChain(
            ["a", "b", "end"],
            np.array([
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0],
            ]),
        )
        with pytest.raises(NotAbsorbingError):
            AbsorbingChainAnalysis(chain)

    def test_all_absorbing_chain(self):
        chain = DiscreteTimeMarkovChain(["a", "b"], np.eye(2))
        analysis = AbsorbingChainAnalysis(chain)
        assert analysis.absorption_probability("a", "a") == 1.0
        assert analysis.expected_steps_to_absorption("a") == 0.0


class TestExpectedVisitsAndSteps:
    def test_expected_steps_linear_chain(self):
        chain = (
            ChainBuilder()
            .add_edge("s1", "s2", 1.0)
            .add_edge("s2", "s3", 1.0)
            .add_edge("s3", "End", 1.0)
            .build()
        )
        analysis = AbsorbingChainAnalysis(chain)
        assert analysis.expected_steps_to_absorption("s1") == pytest.approx(3.0)

    def test_expected_visits_geometric(self):
        """Self-loop with survival r: expected visits = 1/(1-r)."""
        r = 0.25
        chain = (
            ChainBuilder()
            .add_edge("work", "work", r)
            .add_edge("work", "End", 1 - r)
            .build()
        )
        analysis = AbsorbingChainAnalysis(chain)
        assert analysis.expected_visits("work", "work") == pytest.approx(1 / (1 - r))

    def test_visits_from_absorbing_is_zero(self):
        analysis = AbsorbingChainAnalysis(fail_end_chain(0.5))
        assert analysis.expected_visits("End", "work") == 0.0

    def test_visits_to_absorbing_rejected(self):
        analysis = AbsorbingChainAnalysis(fail_end_chain(0.5))
        with pytest.raises(NotAbsorbingError):
            analysis.expected_visits("Start", "End")

    def test_probabilities_clipped_to_unit_interval(self):
        analysis = AbsorbingChainAnalysis(fail_end_chain(0.0))
        value = analysis.absorption_probability("Start", "End")
        assert 0.0 <= value <= 1.0
