"""Unit tests for the Monte Carlo fault-injection simulator."""

import pytest

from repro.errors import EvaluationError, ModelError
from repro.model import (
    Assembly,
    CpuResource,
    FlowBuilder,
    ServiceRequest,
    perfect_connector,
)
from repro.model.parameters import FormalParameter
from repro.model.service import AnalyticInterface, CompositeService, SimpleService
from repro.scenarios import local_assembly, recursive_assembly
from repro.simulation import MonteCarloSimulator, SimulationResult
from repro.symbolic import Constant, Parameter


class TestSimulationResult:
    def test_point_estimates(self):
        result = SimulationResult(1000, 100)
        assert result.pfail == pytest.approx(0.1)
        assert result.reliability == pytest.approx(0.9)

    def test_standard_error(self):
        result = SimulationResult(10000, 100)
        p = 0.01
        assert result.standard_error == pytest.approx(
            (p * (1 - p) / 10000) ** 0.5
        )

    def test_confidence_interval_contains_estimate(self):
        result = SimulationResult(1000, 37)
        low, high = result.confidence_interval()
        assert low <= result.pfail <= high

    def test_interval_clamped_to_unit_range(self):
        low, high = SimulationResult(10, 0).confidence_interval()
        assert low == 0.0 and high < 1.0

    def test_consistency_check(self):
        result = SimulationResult(10000, 500)
        assert result.consistent_with(0.05)
        assert not result.consistent_with(0.5)

    def test_zero_failures_consistency_uses_wilson(self):
        result = SimulationResult(10000, 0)
        assert result.consistent_with(1e-5)
        assert not result.consistent_with(0.05)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ModelError):
            SimulationResult(0, 0)
        with pytest.raises(ModelError):
            SimulationResult(10, 11)


class TestSimulatorSemantics:
    def certain_failure_assembly(self) -> Assembly:
        flow = (
            FlowBuilder(formals=())
            .state("s", [ServiceRequest("dead", actuals={})])
            .sequence("s")
            .build()
        )
        app = CompositeService("app", AnalyticInterface(), flow)
        dead = SimpleService("dead", AnalyticInterface(), Constant(1.0))
        assembly = Assembly("dead")
        assembly.add_services(app, dead, perfect_connector("loc"))
        assembly.bind("app", "s", "dead")  # unused slot name guard
        assembly = Assembly("dead2")
        assembly.add_services(app, dead, perfect_connector("loc"))
        assembly.bind("app", "dead", "dead", connector="loc")
        return assembly

    def test_certain_failure_always_fails(self):
        simulator = MonteCarloSimulator(self.certain_failure_assembly(), seed=1, validate=False)
        result = simulator.estimate_pfail("app", 200)
        assert result.pfail == 1.0

    def test_perfect_assembly_never_fails(self):
        flow = (
            FlowBuilder(formals=())
            .state("s", [ServiceRequest("ok", actuals={})])
            .sequence("s")
            .build()
        )
        app = CompositeService("app", AnalyticInterface(), flow)
        ok = SimpleService("ok", AnalyticInterface(), Constant(0.0))
        assembly = Assembly("perfect")
        assembly.add_services(app, ok, perfect_connector("loc"))
        assembly.bind("app", "ok", "ok", connector="loc")
        result = MonteCarloSimulator(assembly, seed=2).estimate_pfail("app", 200)
        assert result.pfail == 0.0

    def test_seed_reproducibility(self):
        assembly = local_assembly()
        kwargs = dict(elem=1, list=500, res=1)
        a = MonteCarloSimulator(assembly, seed=99).estimate_pfail("search", 2000, **kwargs)
        b = MonteCarloSimulator(assembly, seed=99).estimate_pfail("search", 2000, **kwargs)
        assert a.failures == b.failures

    def test_different_seeds_give_different_outcome_sequences(self):
        from dataclasses import replace

        from repro.scenarios import SearchSortParameters

        params = replace(SearchSortParameters(), phi_sort1=1e-4)
        assembly = local_assembly(params)
        kwargs = dict(elem=1, list=500, res=1)

        def outcomes(seed):
            simulator = MonteCarloSimulator(assembly, seed=seed)
            return [simulator.simulate_once("search", **kwargs) for _ in range(200)]

        assert outcomes(1) != outcomes(2)

    def test_simulate_once_returns_bool(self):
        simulator = MonteCarloSimulator(local_assembly(), seed=0)
        assert simulator.simulate_once("search", elem=1, list=10, res=1) in (True, False)

    def test_cyclic_assembly_rejected(self):
        simulator = MonteCarloSimulator(recursive_assembly(), seed=0)
        with pytest.raises(EvaluationError):
            simulator.estimate_pfail("A", 10, size=1)

    def test_compiled_plan_reusable(self):
        simulator = MonteCarloSimulator(local_assembly(), seed=0)
        plan = simulator.compile("search", elem=1, list=10, res=1)
        outcomes = {simulator._run(plan) for _ in range(50)}
        assert outcomes <= {True, False}

    def test_simple_service_direct_simulation(self):
        simulator = MonteCarloSimulator(local_assembly(), seed=0)
        result = simulator.estimate_pfail("cpu1", 100, N=1000)
        assert 0.0 <= result.pfail <= 1.0
