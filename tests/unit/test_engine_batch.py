"""BatchEngine semantics: ordering, error isolation, budgets, stats."""

import pytest

from repro.core.evaluator import ReliabilityEvaluator
from repro.engine import BatchEngine, BatchRequest, PlanCache, resolve_jobs, split_evenly
from repro.errors import BudgetExceededError, EvaluationError, ReproError
from repro.runtime import EvaluationBudget
from repro.scenarios import local_assembly, recursive_assembly, remote_assembly

POINTS = [{"elem": 1.0, "list": float(v), "res": 1.0} for v in (1, 100, 500, 1000)]


class TestHelpers:
    def test_resolve_jobs(self):
        import os
        import warnings

        cores = os.cpu_count() or 1
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) == cores  # all cores, no warning
        # an explicit in-range request passes through untouched
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs(cores) == cores
        # oversubscription clamps to the core count and warns
        from repro.engine import parallel

        parallel.reset_clamp_warning()
        with pytest.warns(RuntimeWarning, match="clamping"):
            assert resolve_jobs(cores + 5) == cores
        with pytest.raises(EvaluationError):
            resolve_jobs(-2)

    def test_resolve_jobs_warns_once_per_process(self):
        import os
        import warnings

        from repro.engine import parallel

        cores = os.cpu_count() or 1
        parallel.reset_clamp_warning()
        with pytest.warns(RuntimeWarning, match="clamping"):
            assert resolve_jobs(cores + 5) == cores
        # the second oversubscribed call still clamps, silently
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs(cores + 9) == cores

    def test_clamp_warning_suppressed_across_process_boundary(self):
        """The once-flag travels through the environment: a child process
        (e.g. a restarted supervisor pool's fresh worker) that imports the
        module after the parent warned must not re-emit."""
        import os
        import warnings

        from repro.engine import parallel

        cores = os.cpu_count() or 1
        parallel.reset_clamp_warning()
        try:
            with pytest.warns(RuntimeWarning, match="clamping"):
                resolve_jobs(cores + 5)
            assert os.environ[parallel._CLAMP_WARNED_ENV] == "1"
            # simulate the child's fresh import: re-seed the flag the way
            # module import does, then check an oversubscribed call stays
            # silent
            parallel._clamp_warning_emitted = (
                os.environ.get(parallel._CLAMP_WARNED_ENV) == "1"
            )
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_jobs(cores + 9) == cores
        finally:
            parallel.reset_clamp_warning()

    def test_reset_clamp_warning_rearms(self):
        import os

        from repro.engine import parallel

        cores = os.cpu_count() or 1
        parallel.reset_clamp_warning()
        with pytest.warns(RuntimeWarning, match="clamping"):
            resolve_jobs(cores + 5)
        parallel.reset_clamp_warning()
        assert parallel._CLAMP_WARNED_ENV not in os.environ
        with pytest.warns(RuntimeWarning, match="clamping"):
            resolve_jobs(cores + 5)
        parallel.reset_clamp_warning()

    def test_resolve_jobs_records_gauge(self):
        from repro import observability as obs

        obs.reset()
        obs.enable()
        try:
            resolve_jobs(1)
            snapshot = obs.registry().snapshot()
            assert snapshot["gauges"]["engine.jobs.resolved"] == 1
        finally:
            obs.reset()

    def test_split_evenly_contiguous_and_complete(self):
        items = list(range(10))
        chunks = split_evenly(items, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for chunk in chunks for x in chunk] == items

    def test_split_evenly_never_empty(self):
        assert split_evenly([1, 2], 5) == [[1], [2]]
        assert split_evenly([], 3) == [[]][:0] or split_evenly([], 3) == [[]]


class TestEvaluate:
    def test_matches_recursive_evaluator(self):
        engine = BatchEngine()
        result = engine.evaluate(local_assembly(), "search", POINTS)
        assert result.ok and len(result) == len(POINTS)
        evaluator = ReliabilityEvaluator(local_assembly())
        for entry, point in zip(result, POINTS):
            assert entry.pfail == pytest.approx(
                evaluator.pfail("search", **point), abs=1e-15
            )
            assert entry.backend == "symbolic"
            assert entry.reliability == pytest.approx(1.0 - entry.pfail)

    def test_labels_and_order_preserved(self):
        engine = BatchEngine()
        labels = [f"p{i}" for i in range(len(POINTS))]
        result = engine.evaluate(local_assembly(), "search", POINTS, labels=labels)
        assert [e.label for e in result] == labels
        assert [e.index for e in result] == list(range(len(POINTS)))

    def test_label_count_mismatch_is_typed(self):
        with pytest.raises(EvaluationError):
            BatchEngine().evaluate(local_assembly(), "search", POINTS, labels=["x"])

    def test_best_picks_lowest_pfail(self):
        result = BatchEngine().evaluate(local_assembly(), "search", POINTS)
        best = result.best()
        assert best.actuals["list"] == 1.0  # smallest workload wins


class TestMultiModel:
    def test_heterogeneous_batch_shares_plans(self):
        engine = BatchEngine(cache=PlanCache())
        local, remote = local_assembly(), remote_assembly()
        requests = [
            BatchRequest(a, "search", p, label=a.name)
            for a in (local, remote)
            for p in POINTS
        ]
        result = engine.run(requests)
        assert result.ok
        assert result.stats.entries == 8
        assert result.stats.plans == 2
        assert result.stats.compilations == 2
        # rerunning is all cache hits, zero compilations
        again = engine.run(requests)
        assert again.stats.compilations == 0
        assert again.stats.cache_hits == 2
        assert again.pfails() == result.pfails()

    def test_cyclic_model_served_by_robust_backend(self):
        result = BatchEngine().evaluate(
            recursive_assembly(), "A", [{"size": 1.0}, {"size": 2.0}]
        )
        assert result.ok
        assert all(e.backend == "robust" for e in result)


class TestErrorIsolation:
    def test_bad_point_fails_alone(self):
        points = [dict(POINTS[0]), {"elem": 1.0, "list": float("nan"), "res": 1.0},
                  dict(POINTS[2])]
        result = BatchEngine().evaluate(local_assembly(), "search", points)
        assert not result.ok
        assert len(result.failures) == 1
        failed = result.failures[0]
        assert failed.index == 1 and isinstance(failed.error, ReproError)
        assert result.entries[0].ok and result.entries[2].ok

    def test_uncompilable_model_fails_per_entry_not_globally(self):
        class Broken:
            name = "broken"

            def service(self, name):
                raise EvaluationError("no such service")

        requests = [
            BatchRequest(Broken(), "search", POINTS[0]),
            BatchRequest(local_assembly(), "search", POINTS[0]),
        ]
        result = BatchEngine().run(requests)
        assert not result.entries[0].ok
        assert result.entries[1].ok

    def test_pfails_uses_none_for_failures(self):
        points = [dict(POINTS[0]), {"elem": 1.0, "list": float("nan"), "res": 1.0}]
        result = BatchEngine().evaluate(local_assembly(), "search", points)
        values = result.pfails()
        assert values[0] is not None and values[1] is None


class TestBudget:
    def test_expired_deadline_is_typed(self):
        budget = EvaluationBudget(deadline=0.0)
        engine = BatchEngine(budget=budget)
        result = engine.evaluate(local_assembly(), "search", POINTS)
        assert not result.ok
        assert all(
            isinstance(e.error, BudgetExceededError) for e in result.failures
        ) or not result.entries  # compilation itself may trip first

    def test_generous_deadline_passes(self):
        engine = BatchEngine(budget=EvaluationBudget(deadline=60.0))
        assert engine.evaluate(local_assembly(), "search", POINTS).ok


class TestParallel:
    def test_process_pool_matches_serial_exactly(self):
        serial = BatchEngine(jobs=1).evaluate(local_assembly(), "search", POINTS)
        parallel = BatchEngine(jobs=2, mode="process").evaluate(
            local_assembly(), "search", POINTS
        )
        assert parallel.ok
        assert parallel.pfails() == serial.pfails()

    def test_thread_pool_matches_serial_exactly(self):
        serial = BatchEngine(jobs=1).evaluate(local_assembly(), "search", POINTS)
        threaded = BatchEngine(jobs=2, mode="thread").evaluate(
            local_assembly(), "search", POINTS
        )
        assert threaded.pfails() == serial.pfails()

    def test_parallel_error_isolation_survives_pickling(self):
        points = [dict(POINTS[0]), {"elem": 1.0, "list": float("nan"), "res": 1.0},
                  dict(POINTS[2])]
        result = BatchEngine(jobs=2).evaluate(local_assembly(), "search", points)
        assert len(result.failures) == 1
        assert isinstance(result.failures[0].error, ReproError)

    def test_unknown_mode_rejected(self):
        with pytest.raises(EvaluationError):
            BatchEngine(mode="fibers")
