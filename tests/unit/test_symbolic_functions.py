"""Unit tests for the function registry."""

import numpy as np
import pytest

from repro.errors import UnknownFunctionError
from repro.symbolic import (
    Call,
    Constant,
    FunctionSpec,
    function_names,
    get_function,
    register_function,
)


class TestRegistry:
    def test_default_functions_registered(self):
        names = function_names()
        for expected in ("log", "log2", "exp", "sqrt", "ceil", "floor", "abs",
                         "min", "max"):
            assert expected in names

    def test_unknown_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            get_function("definitely_not_registered")

    def test_register_custom_function(self):
        register_function(FunctionSpec("double_test_only", 1, lambda x: 2 * x))
        try:
            assert Call("double_test_only", (Constant(4.0),)).evaluate({}) == 8.0
        finally:
            # keep the global registry clean for other tests
            from repro.symbolic import functions

            del functions._REGISTRY["double_test_only"]


class TestBuiltins:
    def test_ceil_floor(self):
        assert Call("ceil", (Constant(1.2),)).evaluate({}) == 2.0
        assert Call("floor", (Constant(1.8),)).evaluate({}) == 1.0

    def test_abs(self):
        assert Call("abs", (Constant(-3.0),)).evaluate({}) == 3.0

    def test_min_max(self):
        assert Call("min", (Constant(2.0), Constant(5.0))).evaluate({}) == 2.0
        assert Call("max", (Constant(2.0), Constant(5.0))).evaluate({}) == 5.0

    def test_sqrt(self):
        assert Call("sqrt", (Constant(16.0),)).evaluate({}) == 4.0

    def test_log_positive(self):
        assert Call("log", (Constant(np.e),)).evaluate({}) == pytest.approx(1.0)

    def test_log_zero_guard_scalar(self):
        """The zero-size-workload convention: log(0) -> 0, not -inf."""
        assert Call("log", (Constant(0.0),)).evaluate({}) == 0.0
        assert Call("log2", (Constant(0.0),)).evaluate({}) == 0.0

    def test_log_zero_guard_array(self):
        out = Call("log", (Constant(0.0) * 1,)).evaluate({})
        assert out == 0.0

    def test_min_max_broadcast(self):
        from repro.symbolic import Parameter

        out = Call("max", (Parameter("a"), Constant(2.0))).evaluate(
            {"a": np.array([1.0, 3.0])}
        )
        np.testing.assert_array_equal(out, np.array([2.0, 3.0]))
