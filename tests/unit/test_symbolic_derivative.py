"""Unit tests for symbolic differentiation."""

import math

import pytest

from repro.errors import SymbolicError
from repro.symbolic import Call, Constant, Parameter, differentiate

X = Parameter("x")
Y = Parameter("y")


def d(expr, name="x"):
    return differentiate(expr, name)


class TestBasicRules:
    def test_constant(self):
        assert d(Constant(5.0)) == Constant(0.0)

    def test_own_parameter(self):
        assert d(X) == Constant(1.0)

    def test_other_parameter(self):
        assert d(Y) == Constant(0.0)

    def test_sum(self):
        assert d(X + X).evaluate({"x": 3}) == 2.0

    def test_difference(self):
        assert d(X - Constant(2.0) * X).evaluate({"x": 1}) == -1.0

    def test_product_rule(self):
        # d/dx (x * x) = 2x
        assert d(X * X).evaluate({"x": 4}) == 8.0

    def test_quotient_rule(self):
        # d/dx (1/x) = -1/x^2
        assert d(Constant(1.0) / X).evaluate({"x": 2}) == pytest.approx(-0.25)

    def test_negation(self):
        assert d(-X).evaluate({"x": 1}) == -1.0


class TestPowerRules:
    def test_constant_exponent(self):
        # d/dx x^3 = 3x^2
        assert d(X ** 3).evaluate({"x": 2}) == 12.0

    def test_constant_base(self):
        # d/dx 2^x = 2^x ln 2
        value = d(Constant(2.0) ** X).evaluate({"x": 3})
        assert value == pytest.approx(8.0 * math.log(2.0))

    def test_general_power(self):
        # d/dx x^x = x^x (ln x + 1)
        value = d(X ** X).evaluate({"x": 2})
        assert value == pytest.approx(4.0 * (math.log(2.0) + 1.0))


class TestFunctionRules:
    def test_log(self):
        assert d(Call("log", (X,))).evaluate({"x": 4}) == pytest.approx(0.25)

    def test_log2(self):
        value = d(Call("log2", (X,))).evaluate({"x": 4})
        assert value == pytest.approx(1.0 / (4.0 * math.log(2.0)))

    def test_exp_chain(self):
        # d/dx exp(2x) = 2 exp(2x)
        value = d(Call("exp", (Constant(2.0) * X,))).evaluate({"x": 1})
        assert value == pytest.approx(2.0 * math.exp(2.0))

    def test_sqrt(self):
        value = d(Call("sqrt", (X,))).evaluate({"x": 9})
        assert value == pytest.approx(1.0 / 6.0)

    def test_non_differentiable_function_raises(self):
        with pytest.raises(SymbolicError):
            d(Call("ceil", (X,)))


class TestAgainstFiniteDifferences:
    @pytest.mark.parametrize(
        "expr,point",
        [
            ((1 - (1 - Constant(1e-6)) ** X), 100.0),
            (Constant(1.0) - Call("exp", (-(Constant(1e-4) * X),)), 50.0),
            (X * Call("log2", (X,)), 64.0),
            (Call("exp", (-(X * Call("log2", (X,)) * 1e-5),)), 32.0),
        ],
    )
    def test_matches_central_difference(self, expr, point):
        """The reliability-shaped expressions of the paper differentiate
        correctly."""
        h = 1e-5 * max(abs(point), 1.0)
        numeric = (
            expr.evaluate({"x": point + h}) - expr.evaluate({"x": point - h})
        ) / (2 * h)
        symbolic = d(expr).evaluate({"x": point})
        assert symbolic == pytest.approx(numeric, rel=1e-6, abs=1e-12)
