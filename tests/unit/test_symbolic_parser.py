"""Unit tests for the expression text parser."""

import pytest

from repro.errors import ExpressionParseError
from repro.symbolic import (
    Binary,
    Call,
    Constant,
    Parameter,
    Unary,
    parse_expression,
)


class TestAtoms:
    def test_integer(self):
        assert parse_expression("42") == Constant(42.0)

    def test_float(self):
        assert parse_expression("3.25") == Constant(3.25)

    def test_scientific_notation(self):
        assert parse_expression("1e-6") == Constant(1e-6)

    def test_leading_dot(self):
        assert parse_expression(".5") == Constant(0.5)

    def test_parameter(self):
        assert parse_expression("list") == Parameter("list")

    def test_underscored_name(self):
        assert parse_expression("failure_rate") == Parameter("failure_rate")

    def test_parenthesized(self):
        assert parse_expression("(x)") == Parameter("x")


class TestOperators:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.evaluate({}) == 7.0

    def test_parentheses_override(self):
        assert parse_expression("(1 + 2) * 3").evaluate({}) == 9.0

    def test_left_associative_subtraction(self):
        assert parse_expression("10 - 3 - 2").evaluate({}) == 5.0

    def test_left_associative_division(self):
        assert parse_expression("16 / 4 / 2").evaluate({}) == 2.0

    def test_power_right_associative(self):
        assert parse_expression("2 ** 3 ** 2").evaluate({}) == 512.0

    def test_power_binds_tighter_than_unary_minus(self):
        assert parse_expression("-2 ** 2").evaluate({}) == -4.0

    def test_unary_minus(self):
        assert parse_expression("-x") == Unary(Parameter("x"))

    def test_double_unary_minus(self):
        assert parse_expression("--x").evaluate({"x": 3}) == 3.0


class TestCalls:
    def test_single_argument(self):
        assert parse_expression("log2(list)") == Call("log2", (Parameter("list"),))

    def test_nested_expression_argument(self):
        expr = parse_expression("log2(list * 2)")
        assert expr.evaluate({"list": 8}) == 4.0

    def test_two_arguments(self):
        expr = parse_expression("max(a, b)")
        assert expr.evaluate({"a": 2, "b": 5}) == 5.0

    def test_paper_workload_expression(self):
        expr = parse_expression("list * log2(list)")
        assert expr == Binary(
            "*", Parameter("list"), Call("log2", (Parameter("list"),))
        )

    def test_equation_14(self):
        expr = parse_expression("1 - (1 - 1e-6) ** N")
        assert expr.evaluate({"N": 0}) == 0.0
        assert 0 < expr.evaluate({"N": 1000}) < 1e-2


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "", "   ", "1 +", "* 2", "(1 + 2", "1 + 2)", "log2()",
            "f(", "1 2", "a..b", "#x", "max(a,)",
        ],
    )
    def test_malformed_input_raises(self, text):
        with pytest.raises(ExpressionParseError):
            parse_expression(text)

    def test_unknown_function_raises_at_construction(self):
        # the parser builds a Call, and Call validates the registry
        from repro.errors import UnknownFunctionError

        with pytest.raises(UnknownFunctionError):
            parse_expression("frobnicate(x)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "list * log2(list)",
            "1 - (1 - phi) ** N",
            "a + b * c - d / e",
            "-(x + 1) ** 2",
            "max(min(a, b), 0)",
        ],
    )
    def test_str_reparses_to_same_tree(self, text):
        expr = parse_expression(text)
        assert parse_expression(str(expr)) == expr
