"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CyclicAssemblyError,
    DuplicateNameError,
    EvaluationError,
    ExpressionParseError,
    FixedPointDivergenceError,
    InvalidDistributionError,
    InvalidFlowError,
    InvalidSharingError,
    MarkovError,
    ModelError,
    NotAbsorbingError,
    ProbabilityRangeError,
    ReproError,
    SymbolicError,
    UnboundParameterError,
    UnboundRequirementError,
    UnknownFunctionError,
    UnknownServiceError,
    UnknownStateError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SymbolicError, MarkovError, ModelError, EvaluationError,
            UnboundParameterError("x"), UnknownFunctionError("f"),
            ExpressionParseError, InvalidDistributionError,
            UnknownStateError("s"), NotAbsorbingError,
            DuplicateNameError("service", "x"), UnknownServiceError("x"),
            UnboundRequirementError("a", "b"), InvalidFlowError,
            InvalidSharingError, CyclicAssemblyError(("a", "a")),
            FixedPointDivergenceError, ProbabilityRangeError("p", 2.0),
        ],
    )
    def test_everything_is_a_repro_error(self, exc):
        instance = exc if isinstance(exc, Exception) else exc("boom")
        assert isinstance(instance, ReproError)

    def test_layer_bases(self):
        assert issubclass(UnboundParameterError, SymbolicError)
        assert issubclass(UnknownFunctionError, SymbolicError)
        assert issubclass(ExpressionParseError, SymbolicError)
        assert issubclass(InvalidDistributionError, MarkovError)
        assert issubclass(UnknownStateError, MarkovError)
        assert issubclass(NotAbsorbingError, MarkovError)
        assert issubclass(DuplicateNameError, ModelError)
        assert issubclass(UnknownServiceError, ModelError)
        assert issubclass(UnboundRequirementError, ModelError)
        assert issubclass(InvalidFlowError, ModelError)
        assert issubclass(InvalidSharingError, ModelError)
        assert issubclass(CyclicAssemblyError, EvaluationError)
        assert issubclass(FixedPointDivergenceError, EvaluationError)
        assert issubclass(ProbabilityRangeError, EvaluationError)


class TestPayloads:
    def test_unbound_parameter_carries_name(self):
        assert UnboundParameterError("list").name == "list"

    def test_cyclic_assembly_carries_cycle(self):
        error = CyclicAssemblyError(("a", "b", "a"))
        assert error.cycle == ("a", "b", "a")
        assert "a -> b -> a" in str(error)
        assert "FixedPointEvaluator" in str(error)

    def test_duplicate_name_message(self):
        error = DuplicateNameError("binding", "app.cpu")
        assert error.kind == "binding" and error.name == "app.cpu"
        assert "app.cpu" in str(error)

    def test_unbound_requirement_message(self):
        error = UnboundRequirementError("search", "sort")
        assert "search" in str(error) and "sort" in str(error)

    def test_probability_range_carries_value(self):
        error = ProbabilityRangeError("Pfail", 1.5)
        assert error.value == 1.5
        assert "[0, 1]" in str(error)

    def test_one_base_catches_the_library(self):
        """The API-boundary pattern: one except clause suffices."""
        from repro.symbolic import Parameter

        with pytest.raises(ReproError):
            Parameter("x").evaluate({})
