"""Unit tests for the DTMC substrate."""

import numpy as np
import pytest

from repro.errors import InvalidDistributionError, UnknownStateError
from repro.markov import ChainBuilder, DiscreteTimeMarkovChain


def two_state_chain(p: float = 0.3) -> DiscreteTimeMarkovChain:
    return DiscreteTimeMarkovChain(
        ["a", "b"], np.array([[1 - p, p], [0.0, 1.0]])
    )


class TestConstruction:
    def test_valid_chain(self):
        chain = two_state_chain()
        assert len(chain) == 2
        assert chain.states == ("a", "b")

    def test_duplicate_states_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteTimeMarkovChain(["a", "a"], np.eye(2))

    def test_empty_chain_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteTimeMarkovChain([], np.zeros((0, 0)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteTimeMarkovChain(["a", "b"], np.eye(3))

    def test_negative_probability_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteTimeMarkovChain(
                ["a", "b"], np.array([[1.5, -0.5], [0.0, 1.0]])
            )

    def test_non_stochastic_row_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteTimeMarkovChain(
                ["a", "b"], np.array([[0.5, 0.4], [0.0, 1.0]])
            )

    def test_round_off_renormalized(self):
        chain = DiscreteTimeMarkovChain(
            ["a", "b"], np.array([[0.3 + 1e-10, 0.7], [0.0, 1.0]])
        )
        np.testing.assert_allclose(chain.matrix.sum(axis=1), 1.0)

    def test_matrix_is_read_only(self):
        chain = two_state_chain()
        with pytest.raises(ValueError):
            chain.matrix[0, 0] = 0.5

    def test_hashable_state_labels(self):
        chain = DiscreteTimeMarkovChain(
            [("s", 1), ("s", 2)], np.array([[0.0, 1.0], [0.0, 1.0]])
        )
        assert chain.probability(("s", 1), ("s", 2)) == 1.0


class TestAccessors:
    def test_probability(self):
        assert two_state_chain(0.3).probability("a", "b") == pytest.approx(0.3)

    def test_unknown_state_raises(self):
        with pytest.raises(UnknownStateError):
            two_state_chain().probability("a", "zz")

    def test_successors_skips_zero_mass(self):
        chain = two_state_chain(1.0)
        assert chain.successors("a") == {"b": 1.0}

    def test_contains(self):
        chain = two_state_chain()
        assert "a" in chain and "zz" not in chain


class TestClassification:
    def test_absorbing_detection(self):
        chain = two_state_chain()
        assert chain.is_absorbing_state("b")
        assert not chain.is_absorbing_state("a")
        assert chain.absorbing_states() == ("b",)
        assert chain.transient_states() == ("a",)

    def test_reachability(self):
        chain = DiscreteTimeMarkovChain(
            ["a", "b", "c"],
            np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 1.0]]),
        )
        assert chain.reachable_from("a") == {"a", "b", "c"}
        assert chain.reachable_from("c") == {"c"}


class TestDynamics:
    def test_step_distribution(self):
        chain = two_state_chain(0.5)
        dist = chain.step_distribution({"a": 1.0}, steps=1)
        assert dist == {"a": 0.5, "b": 0.5}

    def test_step_distribution_converges_to_absorbing(self):
        chain = two_state_chain(0.5)
        dist = chain.step_distribution({"a": 1.0}, steps=60)
        assert dist["b"] == pytest.approx(1.0, abs=1e-12)

    def test_invalid_initial_distribution_rejected(self):
        with pytest.raises(InvalidDistributionError):
            two_state_chain().step_distribution({"a": 0.5})

    def test_negative_steps_rejected(self):
        with pytest.raises(InvalidDistributionError):
            two_state_chain().step_distribution({"a": 1.0}, steps=-1)

    def test_n_step_matrix(self):
        chain = two_state_chain(0.5)
        np.testing.assert_allclose(
            chain.n_step_matrix(2), chain.matrix @ chain.matrix
        )

    def test_zero_step_matrix_is_identity(self):
        np.testing.assert_allclose(two_state_chain().n_step_matrix(0), np.eye(2))


class TestChainBuilder:
    def test_accumulates_parallel_edges(self):
        chain = (
            ChainBuilder()
            .add_edge("a", "b", 0.25)
            .add_edge("a", "b", 0.25)
            .add_edge("a", "c", 0.5)
            .build()
        )
        assert chain.probability("a", "b") == pytest.approx(0.5)

    def test_states_without_edges_become_absorbing(self):
        chain = ChainBuilder().add_edge("a", "end", 1.0).build()
        assert chain.is_absorbing_state("end")

    def test_negative_edge_rejected(self):
        with pytest.raises(InvalidDistributionError):
            ChainBuilder().add_edge("a", "b", -0.1)

    def test_declared_order_preserved(self):
        chain = (
            ChainBuilder()
            .add_state("z")
            .add_edge("a", "z", 1.0)
            .build()
        )
        assert chain.states == ("z", "a")

    def test_under_stochastic_row_rejected_at_build(self):
        with pytest.raises(InvalidDistributionError):
            ChainBuilder().add_edge("a", "b", 0.5).add_edge("b", "a", 1.0).build()
