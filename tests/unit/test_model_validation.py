"""Unit tests for assembly validation."""

import pytest

from repro.errors import ModelError
from repro.model import (
    Assembly,
    CpuResource,
    FlowBuilder,
    OR,
    ServiceRequest,
    perfect_connector,
    validate_assembly,
)
from repro.model.parameters import FormalParameter
from repro.model.service import AnalyticInterface, CompositeService
from repro.scenarios import local_assembly, remote_assembly, recursive_assembly
from repro.symbolic import Parameter


def app_with_flow(flow) -> CompositeService:
    interface = AnalyticInterface(formal_parameters=(FormalParameter("n"),))
    return CompositeService("app", interface, flow)


def simple_app(slot="cpu", actuals=None) -> CompositeService:
    if actuals is None:
        actuals = {"N": Parameter("n")}
    flow = (
        FlowBuilder(formals=("n",))
        .state("s", [ServiceRequest(slot, actuals=actuals)])
        .sequence("s")
        .build()
    )
    return app_with_flow(flow)


class TestHappyPaths:
    def test_scenario_assemblies_validate_clean(self):
        for assembly in (local_assembly(), remote_assembly()):
            report = validate_assembly(assembly)
            assert report.ok, str(report)
            assert not report.warnings, str(report)

    def test_str_of_clean_report(self):
        assert "valid" in str(validate_assembly(local_assembly()))


class TestBindingErrors:
    def test_unbound_requirement_reported(self):
        assembly = Assembly().add_services(
            simple_app(), CpuResource("cpu1", 1e6, 0.0).service()
        )
        report = validate_assembly(assembly)
        assert not report.ok
        assert any("cpu" in str(i) for i in report.errors)

    def test_unknown_provider_reported(self):
        assembly = Assembly().add_service(simple_app())
        assembly.bind("app", "cpu", "ghost")
        report = validate_assembly(assembly)
        assert any("ghost" in i.message for i in report.errors)

    def test_unknown_consumer_reported(self):
        assembly = Assembly().add_service(CpuResource("cpu1", 1e6, 0.0).service())
        assembly.bind("ghost", "x", "cpu1")
        assert not validate_assembly(assembly).ok

    def test_unknown_connector_reported(self):
        assembly = Assembly().add_services(
            simple_app(), CpuResource("cpu1", 1e6, 0.0).service()
        )
        assembly.bind("app", "cpu", "cpu1", connector="ghost")
        report = validate_assembly(assembly)
        assert any("ghost" in i.message for i in report.errors)

    def test_simple_consumer_reported(self):
        assembly = Assembly().add_services(
            CpuResource("cpu1", 1e6, 0.0).service(),
            CpuResource("cpu2", 1e6, 0.0).service(),
        )
        assembly.bind("cpu1", "x", "cpu2")
        report = validate_assembly(assembly)
        assert any("simple service" in i.message for i in report.errors)

    def test_never_requested_slot_is_warning(self):
        assembly = Assembly().add_services(
            simple_app(), CpuResource("cpu1", 1e6, 0.0).service()
        )
        assembly.bind("app", "cpu", "cpu1")
        assembly.bind("app", "unused_slot", "cpu1")
        report = validate_assembly(assembly)
        assert report.ok
        assert any("never requested" in w.message for w in report.warnings)


class TestActualsCoverage:
    def test_missing_provider_actuals_reported(self):
        assembly = Assembly().add_services(
            simple_app(actuals={}),  # forgets to pass N
            CpuResource("cpu1", 1e6, 0.0).service(),
        )
        assembly.bind("app", "cpu", "cpu1")
        report = validate_assembly(assembly)
        assert any("actuals missing" in i.message for i in report.errors)

    def test_extra_actuals_is_warning(self):
        assembly = Assembly().add_services(
            simple_app(actuals={"N": Parameter("n"), "bogus": Parameter("n")}),
            CpuResource("cpu1", 1e6, 0.0).service(),
        )
        assembly.bind("app", "cpu", "cpu1")
        report = validate_assembly(assembly)
        assert report.ok
        assert any("do not match" in w.message for w in report.warnings)

    def test_connector_formals_uncovered_reported(self):
        from repro.model import LocalCallConnector

        assembly = Assembly().add_services(
            simple_app(slot="sort"),
            CpuResource("cpu1", 1e6, 0.0).service(),
            LocalCallConnector("lpc", 10.0).service(),
        )
        # lpc requires (ip, op) actuals but none are supplied on the binding
        assembly.bind("app", "sort", "cpu1", connector="lpc")
        assembly.bind("lpc", "cpu", "cpu1")
        report = validate_assembly(assembly)
        assert any("have no actuals" in i.message for i in report.errors)


class TestSharingRestriction:
    def test_shared_state_resolving_to_two_providers_reported(self):
        flow = (
            FlowBuilder(formals=("n",))
            .state(
                "s",
                [
                    ServiceRequest("db", actuals={"N": Parameter("n")}),
                    ServiceRequest("db", actuals={"N": Parameter("n")}),
                ],
                completion=OR,
                shared=True,
            )
            .sequence("s")
            .build()
        )
        # both requests use slot "db" so flow validation passes; the binding
        # level cannot split one slot, so this configuration is actually
        # fine — build the violation through per-request connector overrides
        assembly = Assembly().add_services(
            app_with_flow(flow),
            CpuResource("db_node", 1e6, 0.0).service(),
            perfect_connector("loc"),
        )
        assembly.bind("app", "db", "db_node", connector="loc")
        report = validate_assembly(assembly)
        assert report.ok  # one provider, one connector: restriction holds


class TestCycles:
    def test_cycle_reported_as_warning(self):
        report = validate_assembly(recursive_assembly())
        assert report.ok
        assert any("cycle" in w.message for w in report.warnings)

    def test_raise_if_invalid(self):
        assembly = Assembly().add_service(simple_app())
        with pytest.raises(ModelError):
            validate_assembly(assembly).raise_if_invalid()

    def test_report_renders_counts(self):
        assembly = Assembly().add_service(simple_app())
        text = str(validate_assembly(assembly))
        assert "error(s)" in text
