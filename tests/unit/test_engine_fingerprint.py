"""Structural fingerprints: equal model ⇔ equal digest, any change ⇒ new."""

import pytest

from repro.engine import (
    assembly_fingerprint,
    canonical_json,
    plan_key,
    service_fingerprint,
)
from repro.errors import EvaluationError, ModelError
from repro.scenarios import local_assembly, remote_assembly
from repro.scenarios.search_sort import SearchSortParameters


class TestCanonicalJson:
    def test_deterministic_across_rebuilds(self):
        assert canonical_json(local_assembly()) == canonical_json(local_assembly())

    def test_compact_and_sorted(self):
        text = canonical_json(local_assembly())
        assert ": " not in text  # compact separators
        assert text.startswith("{")


class TestAssemblyFingerprint:
    def test_stable_across_rebuilds(self):
        assert assembly_fingerprint(local_assembly()) == assembly_fingerprint(
            local_assembly()
        )

    def test_distinct_assemblies_distinct_digests(self):
        assert assembly_fingerprint(local_assembly()) != assembly_fingerprint(
            remote_assembly()
        )

    def test_attribute_change_changes_fingerprint(self):
        base = assembly_fingerprint(local_assembly())
        tweaked = assembly_fingerprint(
            local_assembly(SearchSortParameters(phi_sort1=5e-6))
        )
        assert base != tweaked

    def test_sha256_hex_shape(self):
        digest = assembly_fingerprint(local_assembly())
        assert len(digest) == 64
        int(digest, 16)  # hex


class TestServiceFingerprint:
    def test_depends_on_service_name(self):
        assembly = local_assembly()
        assert service_fingerprint(assembly, "search") != service_fingerprint(
            assembly, "sort1"
        )

    def test_unknown_service_is_typed_error(self):
        with pytest.raises((EvaluationError, ModelError)):
            service_fingerprint(local_assembly(), "nope")


class TestPlanKey:
    def test_key_carries_symbolic_attributes_flag(self):
        assembly = local_assembly()
        plain = plan_key(assembly, "search", False)
        attrs = plan_key(assembly, "search", True)
        assert plain != attrs
        assert plain[:2] == attrs[:2]
