"""Unit tests for the assembly -> baseline adapters (executable section 5)."""

import pytest

from repro.baselines import (
    cheung_from_assembly,
    path_based_from_assembly,
    wang_from_assembly,
)
from repro.core import ReliabilityEvaluator
from repro.errors import EvaluationError
from repro.scenarios import (
    booking_assembly,
    local_assembly,
    remote_assembly,
    replicated_assembly,
)

ACTUALS = {"elem": 1, "list": 100, "res": 1}


class TestAgreementWithoutSharing:
    """Where the baselines' assumptions hold (no sharing), all models must
    coincide with the paper's — they analyze the same Markov structure."""

    @pytest.mark.parametrize("build", [local_assembly, remote_assembly])
    def test_cheung_matches(self, build):
        assembly = build()
        ours = ReliabilityEvaluator(assembly).pfail("search", **ACTUALS)
        baseline = cheung_from_assembly(assembly, "search", **ACTUALS)
        assert baseline.system_unreliability() == pytest.approx(ours, rel=1e-10)

    @pytest.mark.parametrize("build", [local_assembly, remote_assembly])
    def test_path_based_matches_on_acyclic_flow(self, build):
        assembly = build()
        ours = ReliabilityEvaluator(assembly).pfail("search", **ACTUALS)
        baseline = path_based_from_assembly(assembly, "search", **ACTUALS)
        assert baseline.system_unreliability() == pytest.approx(ours, rel=1e-10)

    @pytest.mark.parametrize("build", [local_assembly, remote_assembly])
    def test_wang_matches(self, build):
        assembly = build()
        ours = ReliabilityEvaluator(assembly).pfail("search", **ACTUALS)
        baseline = wang_from_assembly(assembly, "search", **ACTUALS)
        assert baseline.system_unreliability() == pytest.approx(ours, rel=1e-10)

    def test_all_agree_on_or_without_sharing(self):
        assembly = replicated_assembly(3, shared=False)
        ours = ReliabilityEvaluator(assembly).pfail("report", size=500)
        for adapter in (cheung_from_assembly, wang_from_assembly):
            assert adapter(assembly, "report", size=500).system_unreliability() == (
                pytest.approx(ours, rel=1e-9)
            )


class TestDivergenceUnderSharing:
    """The paper's differentiator: baselines hard-wire no-sharing and are
    optimistic on shared OR states."""

    def test_baselines_underestimate_shared_or_unreliability(self):
        assembly = replicated_assembly(3, shared=True)
        ours = ReliabilityEvaluator(assembly).pfail("report", size=500)
        for adapter in (
            cheung_from_assembly,
            path_based_from_assembly,
            wang_from_assembly,
        ):
            baseline = adapter(assembly, "report", size=500).system_unreliability()
            assert baseline < ours

    def test_shared_gds_booking_divergence(self):
        assembly = booking_assembly(shared_gds=True)
        ours = ReliabilityEvaluator(assembly).pfail("booking", itinerary=5)
        baseline = cheung_from_assembly(
            assembly, "booking", itinerary=5
        ).system_unreliability()
        assert baseline < ours

    def test_divergence_vanishes_without_sharing(self):
        assembly = booking_assembly(shared_gds=False)
        ours = ReliabilityEvaluator(assembly).pfail("booking", itinerary=5)
        baseline = cheung_from_assembly(
            assembly, "booking", itinerary=5
        ).system_unreliability()
        assert baseline == pytest.approx(ours, rel=1e-9)


class TestAdapterValidation:
    def test_simple_service_rejected(self):
        with pytest.raises(EvaluationError):
            cheung_from_assembly(local_assembly(), "cpu1", N=1)

    def test_path_based_threshold_forwarded(self):
        model = path_based_from_assembly(
            local_assembly(), "search", mass_threshold=1e-6, **ACTUALS
        )
        assert model.mass_threshold == 1e-6
