"""Unit tests for assemblies, bindings and the dependency structure."""

import pytest

from repro.errors import (
    DuplicateNameError,
    ModelError,
    UnboundRequirementError,
    UnknownServiceError,
)
from repro.model import (
    Assembly,
    CpuResource,
    FlowBuilder,
    ServiceRequest,
    perfect_connector,
)
from repro.model.service import AnalyticInterface, CompositeService
from repro.model.parameters import FormalParameter
from repro.scenarios import local_assembly, remote_assembly
from repro.symbolic import Parameter


def composite(name: str, slot: str = "cpu") -> CompositeService:
    flow = (
        FlowBuilder(formals=("n",))
        .state("s", [ServiceRequest(slot, actuals={"N": Parameter("n")})])
        .sequence("s")
        .build()
    )
    interface = AnalyticInterface(formal_parameters=(FormalParameter("n"),))
    return CompositeService(name, interface, flow)


class TestRegistration:
    def test_duplicate_service_rejected(self):
        assembly = Assembly().add_service(perfect_connector("loc"))
        with pytest.raises(DuplicateNameError):
            assembly.add_service(perfect_connector("loc"))

    def test_non_service_rejected(self):
        with pytest.raises(ModelError):
            Assembly().add_service("not a service")

    def test_unknown_lookup_raises(self):
        with pytest.raises(UnknownServiceError):
            Assembly().service("ghost")

    def test_invalid_assembly_name_rejected(self):
        with pytest.raises(ModelError):
            Assembly("")


class TestBindings:
    def make(self):
        assembly = Assembly()
        assembly.add_services(
            composite("app"),
            CpuResource("cpu1", 1e6, 1e-7).service(),
            perfect_connector("loc"),
        )
        return assembly

    def test_bind_and_resolve(self):
        assembly = self.make().bind("app", "cpu", "cpu1", connector="loc")
        request = assembly.service("app").flow.state("s").requests[0]
        resolved = assembly.resolve_request("app", request)
        assert resolved.provider.name == "cpu1"
        assert resolved.connector.name == "loc"

    def test_rebinding_rejected(self):
        assembly = self.make().bind("app", "cpu", "cpu1")
        with pytest.raises(DuplicateNameError):
            assembly.bind("app", "cpu", "cpu1")

    def test_unbound_slot_raises(self):
        assembly = self.make()
        request = assembly.service("app").flow.state("s").requests[0]
        with pytest.raises(UnboundRequirementError):
            assembly.resolve_request("app", request)

    def test_request_override_beats_binding_default(self):
        assembly = self.make()
        assembly.bind(
            "app", "cpu", "cpu1", connector="loc",
            connector_actuals={"x": Parameter("n")},
        )
        override = ServiceRequest(
            "cpu", actuals={"N": 1}, connector_actuals={"x": Parameter("n") * 2}
        )
        resolved = assembly.resolve_request("app", override)
        assert resolved.connector_actuals["x"].evaluate({"n": 3}) == 6.0

    def test_binding_defaults_used_without_override(self):
        assembly = self.make()
        assembly.bind(
            "app", "cpu", "cpu1", connector="loc",
            connector_actuals={"x": Parameter("n")},
        )
        request = assembly.service("app").flow.state("s").requests[0]
        resolved = assembly.resolve_request("app", request)
        assert resolved.connector_actuals["x"] == Parameter("n")

    def test_direct_binding_without_connector(self):
        assembly = self.make().bind("app", "cpu", "cpu1")
        request = assembly.service("app").flow.state("s").requests[0]
        assert assembly.resolve_request("app", request).connector is None


class TestDependencyStructure:
    def test_dependency_graph_of_local_assembly(self):
        graph = local_assembly().dependency_graph()
        assert graph["search"] == {"sort1", "lpc", "cpu1", "loc1"}
        assert graph["cpu1"] == frozenset()
        assert graph["lpc"] == {"cpu1", "loc3"}

    def test_acyclic_assembly_has_no_cycle(self):
        assert local_assembly().find_cycle() is None

    def test_cycle_detected(self):
        assembly = Assembly()
        a = composite("a", slot="next")
        b = composite("b", slot="next")
        assembly.add_services(a, b)
        assembly.bind("a", "next", "b")
        assembly.bind("b", "next", "a")
        cycle = assembly.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b"}

    def test_recursion_levels_match_section_4(self):
        """Level 0: cpus/net/loc*, level 1: lpc/rpc/sort, level 2: search."""
        levels = local_assembly().recursion_levels()
        assert levels["cpu1"] == 0
        assert levels["loc1"] == levels["loc2"] == levels["loc3"] == 0
        assert levels["sort1"] == 1 and levels["lpc"] == 1
        assert levels["search"] == 2

        levels = remote_assembly().recursion_levels()
        assert levels["cpu2"] == 0 and levels["net12"] == 0
        assert levels["sort2"] == 1 and levels["rpc"] == 1
        assert levels["search"] == 2

    def test_recursion_levels_reject_cycles(self):
        assembly = Assembly()
        assembly.add_services(composite("a", "next"), composite("b", "next"))
        assembly.bind("a", "next", "b")
        assembly.bind("b", "next", "a")
        with pytest.raises(ModelError):
            assembly.recursion_levels()


class TestDescribe:
    def test_describe_lists_services_and_bindings(self):
        text = local_assembly().describe()
        assert "composite search" in text
        assert "simple" in text and "connector" in text
        assert "search.sort -> sort1 via lpc" in text

    def test_repr(self):
        assert "services=" in repr(local_assembly())
