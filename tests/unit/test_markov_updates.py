"""Unit tests for low-rank (SMW) factorization updates (repro.markov.updates).

The contract under test is *exact parity or loud fallback*: an applied
update must match the full re-factorization to tight tolerance, and a
rejected one must raise :class:`UpdateRejected` with the matching counter
charged — never a silently degraded answer.
"""

import numpy as np
import pytest

from repro.markov import AbsorbingChainAnalysis, DiscreteTimeMarkovChain
from repro.markov import solvers, updates
from repro.markov.solvers import chain_plan, factorize_chain, scipy_available
from repro.markov.updates import (
    CAPACITANCE_MAX_CONDITION,
    RowDelta,
    UpdateRejected,
    UpdatedFactorization,
    apply_low_rank_update,
    extract_row_delta,
    rank_crossover,
    reset_update_counters,
    update_counts,
)

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="incremental path requires scipy"
)


def dag_chain(n_transient: int, seed: int = 0) -> DiscreteTimeMarkovChain:
    """Forward-only sparse chain (triangular fast path under sparse)."""
    rng = np.random.default_rng(seed)
    states = [f"t{i}" for i in range(n_transient)] + ["End", "Fail"]
    n = len(states)
    matrix = np.zeros((n, n))
    for i in range(n_transient):
        successors = rng.choice(
            np.arange(i + 1, n_transient), size=min(3, n_transient - i - 1),
            replace=False,
        ) if i + 1 < n_transient else np.array([], dtype=int)
        weights = rng.uniform(0.1, 1.0, size=successors.size + 2)
        weights /= weights.sum()
        for j, w in zip(successors, weights[:-2]):
            matrix[i, j] = w
        matrix[i, n_transient] = weights[-2]
        matrix[i, n_transient + 1] = weights[-1]
    matrix[n_transient, n_transient] = 1.0
    matrix[n_transient + 1, n_transient + 1] = 1.0
    return DiscreteTimeMarkovChain(states, matrix)


def cyclic_chain() -> DiscreteTimeMarkovChain:
    states = ["t0", "t1", "End", "Fail"]
    matrix = np.array(
        [
            [0.0, 0.6, 0.3, 0.1],
            [0.5, 0.0, 0.4, 0.1],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    return DiscreteTimeMarkovChain(states, matrix)


def rescale_row(matrix: np.ndarray, row: int, values) -> np.ndarray:
    """Copy with one row replaced, preserving the sparsity pattern."""
    out = matrix.copy()
    out[row] = values
    assert np.array_equal(out[row] != 0.0, matrix[row] != 0.0)
    return out


def absorbing_mask(chain: DiscreteTimeMarkovChain) -> np.ndarray:
    mask = np.zeros(len(chain.states), dtype=bool)
    mask[[chain.index(s) for s in chain.absorbing_states()]] = True
    return mask


class TestRankCrossover:
    def test_floor_of_four(self):
        assert rank_crossover(2) == 4
        assert rank_crossover(16) == 4

    def test_sqrt_scaling(self):
        assert rank_crossover(100) == 10
        assert rank_crossover(10_000) == 100


class TestExtractRowDelta:
    def pattern(self, chain):
        mask = absorbing_mask(chain)
        transient = np.flatnonzero(~mask)
        plan = chain_plan(chain.matrix, mask, solver="dense", cache=False)
        values = chain.matrix[transient[plan.q_rows], transient[plan.q_cols]]
        return plan, transient, values

    def test_identical_values_is_rank_zero(self):
        chain = cyclic_chain()
        plan, _, values = self.pattern(chain)
        assert extract_row_delta(
            plan.q_rows, plan.q_cols, values, values.copy(), 2
        ) is None

    def test_single_row_change_is_rank_one(self):
        chain = cyclic_chain()
        plan, transient, values = self.pattern(chain)
        perturbed = rescale_row(chain.matrix, 0, [0.0, 0.5, 0.35, 0.15])
        new = perturbed[transient[plan.q_rows], transient[plan.q_cols]]
        delta = extract_row_delta(plan.q_rows, plan.q_cols, values, new, 2)
        assert delta.rank == 1
        assert list(delta.rows) == [0]
        # delta stacks rows of A' - A = -(Q' - Q)
        expected = -(perturbed[0, [0, 1]] - chain.matrix[0, [0, 1]])
        np.testing.assert_allclose(delta.delta[0], expected)


class TestUpdatedFactorization:
    def systems(self, chain, perturbed):
        mask = absorbing_mask(chain)
        transient = np.flatnonzero(~mask)
        base_a = np.eye(transient.size) - chain.matrix[
            np.ix_(transient, transient)
        ]
        new_a = np.eye(transient.size) - perturbed[
            np.ix_(transient, transient)
        ]
        return transient, base_a, new_a

    def build(self, chain, perturbed, solver):
        mask = absorbing_mask(chain)
        transient = np.flatnonzero(~mask)
        plan = chain_plan(chain.matrix, mask, solver=solver, cache=False)
        base = factorize_chain(chain.matrix, plan)
        base_values = chain.matrix[transient[plan.q_rows],
                                   transient[plan.q_cols]]
        new_values = perturbed[transient[plan.q_rows],
                               transient[plan.q_cols]]
        delta = extract_row_delta(
            plan.q_rows, plan.q_cols, base_values, new_values,
            transient.size,
        )
        return base, delta

    def check_parity(self, chain, perturbed, solver):
        base, delta = self.build(chain, perturbed, solver)
        updated = UpdatedFactorization(base, delta)
        _, _, new_a = self.systems(chain, perturbed)
        rng = np.random.default_rng(3)
        rhs = rng.standard_normal(new_a.shape[0])
        np.testing.assert_allclose(
            updated.solve(rhs), np.linalg.solve(new_a, rhs), atol=1e-12
        )
        np.testing.assert_allclose(
            updated.solve_transpose(rhs), np.linalg.solve(new_a.T, rhs),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            updated.matvec(rhs), new_a @ rhs, atol=1e-12
        )
        assert updated.method == f"{base.method}+smw"
        assert updated.reusable
        # norm1 is a conservative upper bound on the perturbed system
        assert updated.norm1() >= np.abs(new_a).sum(axis=0).max() - 1e-12

    def test_dense_base_parity(self):
        chain = cyclic_chain()
        perturbed = rescale_row(chain.matrix, 0, [0.0, 0.5, 0.35, 0.15])
        self.check_parity(chain, perturbed, "dense")

    @needs_scipy
    def test_sparse_lu_base_parity(self):
        chain = cyclic_chain()
        perturbed = rescale_row(chain.matrix, 1, [0.6, 0.0, 0.3, 0.1])
        self.check_parity(chain, perturbed, "sparse")

    @needs_scipy
    def test_sparse_triangular_base_parity(self):
        chain = dag_chain(25, seed=3)
        row = 0
        weights = chain.matrix[row].copy()
        nz = np.flatnonzero(weights)
        weights[nz] = weights[nz] * 0.5
        weights[nz[-1]] += 1.0 - weights.sum()
        perturbed = rescale_row(chain.matrix, row, weights)
        self.check_parity(chain, perturbed, "sparse")

    def test_rank_two_update(self):
        chain = cyclic_chain()
        perturbed = rescale_row(chain.matrix, 0, [0.0, 0.5, 0.35, 0.15])
        perturbed = rescale_row(perturbed, 1, [0.45, 0.0, 0.45, 0.1])
        base, delta = self.build(chain, perturbed, "dense")
        assert delta.rank == 2
        self.check_parity(chain, perturbed, "dense")

    def test_order_mismatch_rejected(self):
        chain = cyclic_chain()
        perturbed = rescale_row(chain.matrix, 0, [0.0, 0.5, 0.35, 0.15])
        base, delta = self.build(chain, perturbed, "dense")
        bad = RowDelta(rows=delta.rows, delta=delta.delta, m=99)
        with pytest.raises(ValueError, match="order"):
            UpdatedFactorization(base, bad)


class TestGuards:
    def identity_base(self, n=4):
        """A = I (every transient state jumps straight to absorption)."""
        states = [f"t{i}" for i in range(n)] + ["End"]
        matrix = np.zeros((n + 1, n + 1))
        matrix[:n, n] = 1.0
        matrix[n, n] = 1.0
        chain = DiscreteTimeMarkovChain(states, matrix)
        plan = chain_plan(chain.matrix, absorbing_mask(chain),
                          solver="dense", cache=False)
        return factorize_chain(chain.matrix, plan)

    def test_rank_limit_rejection_charges_counter(self):
        base = self.identity_base(4)
        delta = RowDelta(
            rows=np.array([0, 1, 2]), delta=np.full((3, 4), 0.01), m=4
        )
        reset_update_counters()
        with pytest.raises(UpdateRejected) as excinfo:
            apply_low_rank_update(base, delta, rank_limit=2)
        assert excinfo.value.reason == "rank"
        assert update_counts() == {
            "applied": 0, "fallback_rank": 1, "fallback_condition": 0,
        }

    def test_singular_capacitance_rejected(self):
        # Delta A[0,0] = -1 makes A'[0,0] = 0: C = 1 + w z = 0 exactly.
        base = self.identity_base(4)
        delta = RowDelta(
            rows=np.array([0]),
            delta=np.array([[-1.0, 0.0, 0.0, 0.0]]),
            m=4,
        )
        reset_update_counters()
        with pytest.raises(UpdateRejected) as excinfo:
            apply_low_rank_update(base, delta)
        assert excinfo.value.reason == "condition"
        assert update_counts()["fallback_condition"] == 1

    def test_near_singular_capacitance_rejected(self):
        base = self.identity_base(4)
        eps = 1.0 / (10.0 * CAPACITANCE_MAX_CONDITION)
        delta = RowDelta(
            rows=np.array([0]),
            delta=np.array([[-(1.0 - eps), 0.0, 0.0, 0.0]]),
            m=4,
        )
        with pytest.raises(UpdateRejected, match="condition"):
            apply_low_rank_update(base, delta)

    def test_well_conditioned_update_applies(self):
        base = self.identity_base(4)
        delta = RowDelta(
            rows=np.array([0]),
            delta=np.array([[0.1, -0.05, 0.0, 0.0]]),
            m=4,
        )
        reset_update_counters()
        updated = apply_low_rank_update(base, delta, rank_limit=4)
        assert updated.rank == 1
        assert updated.capacitance_condition < 2.0
        assert update_counts()["applied"] == 1


@needs_scipy
class TestFactorizeChainIncremental:
    def test_second_solve_is_an_update(self):
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        plan = chain_plan(chain.matrix, mask, solver="dense", cache=False)
        reset_update_counters()
        first = factorize_chain(chain.matrix, plan, incremental=True)
        assert "+smw" not in first.method  # slot was cold: full build
        perturbed = rescale_row(chain.matrix, 0, [0.0, 0.5, 0.35, 0.15])
        second = factorize_chain(perturbed, plan, incremental=True)
        assert second.method.endswith("+smw")
        assert update_counts()["applied"] == 1
        # exact parity with the full factorization of the perturbed system
        full = factorize_chain(perturbed, plan, incremental=False)
        rhs = np.array([1.0, 0.5])
        np.testing.assert_allclose(
            second.solve(rhs), full.solve(rhs), atol=1e-12
        )

    def test_unchanged_values_reuse_base_as_is(self):
        chain = cyclic_chain()
        plan = chain_plan(chain.matrix, absorbing_mask(chain),
                          solver="dense", cache=False)
        reset_update_counters()
        first = factorize_chain(chain.matrix, plan, incremental=True)
        again = factorize_chain(chain.matrix.copy(), plan, incremental=True)
        assert again is first  # rank-0: the base itself comes back
        assert update_counts()["applied"] == 1

    def test_rank_fallback_refreshes_the_slot(self):
        chain = dag_chain(30, seed=1)
        mask = absorbing_mask(chain)
        plan = chain_plan(chain.matrix, mask, solver="dense", cache=False)
        transient = np.flatnonzero(~mask)
        factorize_chain(chain.matrix, plan, incremental=True)
        # perturb every transient row: rank m >> rank_crossover(m)
        perturbed = chain.matrix.copy()
        scale = 0.9
        for i in range(transient.size):
            nz = np.flatnonzero(perturbed[i])
            perturbed[i, nz] *= scale
            perturbed[i, nz[-1]] += 1.0 - perturbed[i].sum()
        reset_update_counters()
        fresh = factorize_chain(perturbed, plan, incremental=True)
        assert "+smw" not in fresh.method
        counts = update_counts()
        assert counts["fallback_rank"] == 1 and counts["applied"] == 0
        # the slot now holds the perturbed base: going back to the original
        # values is served as an update *of the new base*
        back = factorize_chain(chain.matrix, plan, incremental=True)
        assert back.method.endswith("+smw") or update_counts()[
            "fallback_rank"] == 2

    def test_incremental_flag_is_noop_without_scipy(self, monkeypatch):
        chain = cyclic_chain()
        plan = chain_plan(chain.matrix, absorbing_mask(chain),
                          solver="dense", cache=False)
        monkeypatch.setattr(solvers, "_HAVE_SCIPY", False)
        reset_update_counters()
        fact = factorize_chain(chain.matrix, plan, incremental=True)
        assert "+smw" not in fact.method
        assert update_counts()["applied"] == 0

    def test_updates_never_compound(self):
        """Every delta is taken against the pinned *base*, so a long run
        of perturbations stays at full-solve accuracy throughout."""
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        plan = chain_plan(chain.matrix, mask, solver="dense", cache=False)
        factorize_chain(chain.matrix, plan, incremental=True)
        rng = np.random.default_rng(9)
        rhs = np.array([1.0, 1.0])
        for _ in range(20):
            p = rng.uniform(0.3, 0.7)
            perturbed = rescale_row(
                chain.matrix, 0, [0.0, p, (1 - p) * 0.75, (1 - p) * 0.25]
            )
            updated = factorize_chain(perturbed, plan, incremental=True)
            full = factorize_chain(perturbed, plan, incremental=False)
            np.testing.assert_allclose(
                updated.solve(rhs), full.solve(rhs), atol=1e-12
            )


@needs_scipy
class TestAnalysisIncremental:
    def test_absorption_parity_through_update_path(self):
        chain = cyclic_chain()
        rescaled = DiscreteTimeMarkovChain(
            chain.states,
            rescale_row(chain.matrix, 0, [0.0, 0.5, 0.35, 0.15]),
        )
        warm = AbsorbingChainAnalysis(chain, incremental=True)
        assert "+smw" not in warm.solve_method
        updated = AbsorbingChainAnalysis(rescaled, incremental=True)
        assert updated.solve_method.endswith("+smw")
        reference = AbsorbingChainAnalysis(rescaled)
        for state in ("t0", "t1"):
            assert updated.absorption_probability(
                state, "End"
            ) == pytest.approx(
                reference.absorption_probability(state, "End"), abs=1e-12
            )
            assert updated.expected_steps_to_absorption(
                state
            ) == pytest.approx(
                reference.expected_steps_to_absorption(state), rel=1e-10
            )
