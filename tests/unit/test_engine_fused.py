"""The fused execution path: stacked kernels, counters, shm lifecycle.

Covers the contracts the fused executor adds on top of the batch engine:

- ``pfail_grid``'s symbolic fast path (grid-shaped kernel results return
  directly; scalar closed forms — the swept parameter eliminated — still
  materialize a full grid);
- robust-backend ``pfail_grid``/``pfail_stack`` under cooperative budget
  deadlines: a deadline hit mid-grid raises with a partial-progress note,
  never a silently truncated result;
- ``BatchEngine`` fused-group accounting (``fused_entries``,
  ``engine.fused.*`` counters) and per-entry error isolation when a
  poisoned point forces the fallback;
- the shared-memory workspace lifecycle: idempotent close, no segment
  leaked even when a worker is SIGKILLed mid-flight;
- the ``fused`` knob end to end: CLI flags, server request schemas and
  `/v1/cache-stats`, and work-unit id stability (default-on campaigns
  hash identically to pre-fused journals).
"""

import os
import signal

import numpy as np
import pytest

from repro.engine import (
    BatchEngine,
    PlanCache,
    fused_counts,
    reset_fused_counts,
    shm_counts,
)
from repro.engine import shm
from repro.engine.plan import compile_plan
from repro.errors import BudgetExceededError
from repro.runtime.budget import EvaluationBudget
from repro.scenarios import local_assembly, recursive_assembly


# ---------------------------------------------------------------------------
# pfail_grid symbolic fast path (satellite: no broadcast_to(...).copy())
# ---------------------------------------------------------------------------


class TestGridFastPath:
    def test_grid_shaped_result_is_returned_directly(self, local):
        plan = compile_plan(local, "search")
        grid = np.linspace(1.0, 1000.0, 16)
        fixed = {"elem": 1.0, "res": 1.0}
        values = plan.pfail_grid("list", grid, fixed)
        assert values.shape == grid.shape
        loop = [plan.pfail({**fixed, "list": float(v)}) for v in grid]
        assert np.array_equal(values, np.asarray(loop))

    def test_scalar_closed_form_materializes_grid(self, local):
        # sort1's closed form depends on "list" only: sweeping an unused
        # name folds to a scalar, which must still come back grid-shaped
        plan = compile_plan(local, "sort1")
        assert plan.formals == ("list",)
        grid = np.linspace(0.0, 9.0, 7)
        values = plan.pfail_grid("unused", grid, {"list": 100.0})
        assert values.shape == grid.shape
        expected = plan.pfail({"list": 100.0})
        assert np.array_equal(values, np.full(grid.shape, expected))

    def test_grid_result_does_not_alias_grid(self, local):
        plan = compile_plan(local, "search")
        grid = np.linspace(1.0, 500.0, 8)
        values = plan.pfail_grid("list", grid, {"elem": 1.0, "res": 1.0})
        assert not np.shares_memory(values, grid)


# ---------------------------------------------------------------------------
# robust backend under cooperative deadlines (satellite 3)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def robust_plan():
    return compile_plan(recursive_assembly(), "A", solver="sparse")


class TestRobustDeadlines:
    def test_grid_deadline_reports_partial_progress(self, robust_plan):
        budget = EvaluationBudget(deadline=0.2)
        with pytest.raises(BudgetExceededError) as info:
            robust_plan.pfail_grid(
                "size", np.arange(1.0, 64.0), {}, budget=budget
            )
        notes = "\n".join(getattr(info.value, "__notes__", []))
        assert "stopped at point" in notes
        assert "partial results discarded" in notes

    def test_stack_deadline_reports_partial_progress(self, robust_plan):
        budget = EvaluationBudget(deadline=0.2)
        points = [{"size": float(v)} for v in range(1, 64)]
        with pytest.raises(BudgetExceededError) as info:
            robust_plan.pfail_stack(points, budget=budget)
        notes = "\n".join(getattr(info.value, "__notes__", []))
        assert "stacked evaluation" in notes
        assert "stopped at point" in notes

    def test_no_silent_truncation_under_generous_deadline(self, robust_plan):
        budget = EvaluationBudget(deadline=60.0)
        points = [{"size": float(v)} for v in range(1, 5)]
        stacked = robust_plan.pfail_stack(points, budget=budget)
        assert stacked.shape == (len(points),)
        loop = [robust_plan.pfail(p) for p in points]
        assert np.array_equal(stacked, np.asarray(loop))


# ---------------------------------------------------------------------------
# BatchEngine fused groups: accounting, fallback isolation, escape hatch
# ---------------------------------------------------------------------------


class TestEngineFused:
    def _points(self, n):
        return [
            {"elem": 1.0, "res": 1.0, "list": float(v)}
            for v in np.linspace(1.0, 1000.0, n)
        ]

    def test_fused_group_counts_entries(self, local):
        reset_fused_counts()
        engine = BatchEngine(jobs=1, cache=PlanCache())
        result = engine.evaluate(local, "search", self._points(6))
        assert result.ok
        assert result.stats.fused_entries == 6
        counts = fused_counts()
        assert counts["groups"] == 1
        assert counts["entries"] == 6
        assert counts["fallbacks"] == 0

    def test_no_fused_engine_reports_zero(self, local):
        reset_fused_counts()
        engine = BatchEngine(jobs=1, cache=PlanCache(), fused=False)
        result = engine.evaluate(local, "search", self._points(5))
        assert result.ok
        assert result.stats.fused_entries == 0
        assert fused_counts()["groups"] == 0

    def test_fused_and_loop_agree_bitwise(self, local):
        points = self._points(9)
        fused = BatchEngine(jobs=1, cache=PlanCache())
        loop = BatchEngine(jobs=1, cache=PlanCache(), fused=False)
        lhs = [e.pfail for e in fused.evaluate(local, "search", points)]
        rhs = [e.pfail for e in loop.evaluate(local, "search", points)]
        assert lhs == rhs

    def test_poisoned_point_falls_back_to_per_entry_isolation(self, local):
        reset_fused_counts()
        points = self._points(4)
        del points[2]["list"]  # unbound parameter poisons the stack
        engine = BatchEngine(jobs=1, cache=PlanCache())
        result = engine.evaluate(local, "search", points)
        assert not result.ok
        entries = list(result)
        assert [entry.ok for entry in entries] == [True, True, False, True]
        assert result.stats.fused_entries == 0
        assert fused_counts()["fallbacks"] == 1
        # the healthy entries still carry correct values
        plan = compile_plan(local, "search")
        assert entries[0].pfail == plan.pfail(points[0])


# ---------------------------------------------------------------------------
# shared-memory workspace lifecycle (tentpole (b) + satellite 6)
# ---------------------------------------------------------------------------


def _kill_self():  # pragma: no cover - dies by design
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.mark.skipif(not shm.available(), reason="no shared-memory support")
class TestShmLifecycle:
    def _segments(self, workspace):
        names = [workspace.spec()["doc"]["name"]]
        names += [
            spec[0] for spec in workspace.spec()["arrays"].values()
        ]
        return [name.lstrip("/") for name in names]

    def test_roundtrip_and_idempotent_close(self):
        before = shm_counts()["segments"]
        workspace = shm.ShmWorkspace.create(
            b"{}", {"results": ((4,), "float64"), "status": ((4,), "uint8")}
        )
        names = self._segments(workspace)
        try:
            workspace.array("results")[:] = [1.0, 2.0, 3.0, 4.0]
            attached = shm._Attached(workspace.spec())
            assert attached.doc == b"{}"
            assert np.array_equal(
                attached.arrays["results"], [1.0, 2.0, 3.0, 4.0]
            )
            attached.close()
        finally:
            workspace.close()
            workspace.close()  # idempotent
        assert shm_counts()["segments"] == before + len(names)
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_no_leak_when_worker_is_sigkilled(self):
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        workspace = shm.ShmWorkspace.create(
            b"{}", {"results": ((2,), "float64")}
        )
        names = self._segments(workspace)
        executor = ProcessPoolExecutor(max_workers=1)
        try:
            with pytest.raises(BrokenProcessPool):
                executor.submit(_kill_self).result(timeout=30)
        finally:
            executor.shutdown(wait=True)
            workspace.close()
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_parallel_shm_batch_matches_serial(self, monkeypatch):
        # this box may have one core; the engine clamps jobs to the cpu
        # count, so pretend there are enough to exercise the shm path
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assembly = recursive_assembly()
        points = [{"size": float(1 + (i % 5))} for i in range(8)]
        serial = BatchEngine(jobs=1, cache=PlanCache(), solver="sparse")
        expected = [e.pfail for e in serial.evaluate(assembly, "A", points)]
        rows_before = shm_counts()["rows"]
        engine = BatchEngine(
            jobs=2, cache=PlanCache(), solver="sparse", mode="process"
        )
        result = engine.evaluate(assembly, "A", points)
        assert result.ok
        assert [e.pfail for e in result] == expected
        assert shm_counts()["rows"] - rows_before == len(points)


# ---------------------------------------------------------------------------
# the fused knob end to end: CLI, server, work units
# ---------------------------------------------------------------------------


class TestFusedKnob:
    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["batch", "search", "--model", "m.json"])
        assert args.fused is True
        args = parser.parse_args(
            ["batch", "search", "--model", "m.json", "--no-fused"]
        )
        assert args.fused is False
        args = parser.parse_args([
            "sweep", "m.json", "search", "list",
            "--from", "1", "--to", "10", "--no-fused",
        ])
        assert args.fused is False

    def test_server_schema_accepts_fused(self):
        from repro.server.schema import (
            BATCH_REQUEST,
            SWEEP_REQUEST,
            schema_problems,
        )

        body = {
            "requests": [{"model": {}, "service": "s"}],
            "fused": False,
        }
        assert schema_problems(body, BATCH_REQUEST) == []
        body = {
            "model": {}, "service": "s", "parameter": "p",
            "start": 0, "stop": 1, "fused": True,
        }
        assert schema_problems(body, SWEEP_REQUEST) == []
        body["fused"] = "yes"
        assert schema_problems(body, SWEEP_REQUEST) != []

    def test_cache_stats_carries_engine_fused_block(self):
        from repro.server.service import EvaluationService

        stats = EvaluationService().cache_stats()
        fused = stats["engine"]["fused"]
        assert set(fused) >= {"groups", "entries", "fallbacks", "shm"}
        assert set(fused["shm"]) == {"segments", "rows"}

    def test_workunit_ids_stable_under_default_fused(self, local):
        # absence-means-enabled hashing: a default-on campaign must
        # produce the exact unit ids a pre-fused journal recorded
        from repro.workunits import batch_campaign

        points = [
            {"elem": 1.0, "res": 1.0, "list": float(v)} for v in (1, 2, 3)
        ]
        models = [("local", local)]
        default = batch_campaign(models, "search", points, units=2)
        explicit = batch_campaign(
            models, "search", points, units=2, fused=True
        )
        assert [u.unit_id for u in default.units] == [
            u.unit_id for u in explicit.units
        ]
        assert default.campaign_id == explicit.campaign_id
        disabled = batch_campaign(
            models, "search", points, units=2, fused=False
        )
        assert disabled.campaign_id != default.campaign_id
        assert all(
            u.config.get("fused") is False for u in disabled.units
        )
