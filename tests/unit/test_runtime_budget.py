"""Unit tests for :class:`repro.runtime.EvaluationBudget` and its
enforcement across every evaluation entry point.

The acceptance bar for the hardened runtime: a deadline of ~0 and a
max-sweep cap of 1 each provoke a typed
:class:`~repro.errors.BudgetExceededError` — never a hang — on every
evaluator the library exposes.
"""

import pytest

from repro.core import (
    FixedPointEvaluator,
    ReliabilityEvaluator,
    SymbolicEvaluator,
)
from repro.errors import BudgetExceededError
from repro.runtime import EvaluationBudget
from repro.scenarios import local_assembly, recursive_assembly
from repro.simulation import MonteCarloSimulator

ACTUALS = {"elem": 1, "list": 500, "res": 1}


class TestBudgetSemantics:
    def test_unlimited_by_default(self):
        budget = EvaluationBudget()
        budget.check_deadline("x")
        budget.check_states(10**9, "x")
        budget.check_depth(10**9, "x")
        budget.check_sweeps(10**9, "x")
        budget.charge_trials(10**9, "x")

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            EvaluationBudget(deadline=-1.0)
        with pytest.raises(ValueError):
            EvaluationBudget(max_trials=-5)

    def test_zero_deadline_is_already_expired(self):
        budget = EvaluationBudget(deadline=0.0)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.check_deadline("probe")
        assert excinfo.value.resource == "deadline"
        assert "probe" in str(excinfo.value)

    def test_clock_is_lazy_and_idempotent(self):
        budget = EvaluationBudget(deadline=100.0)
        assert budget.elapsed() == 0.0
        budget.start()
        first = budget._started
        budget.start()
        assert budget._started == first
        assert budget.remaining_time() <= 100.0

    def test_reset_reopens_the_envelope(self):
        budget = EvaluationBudget(deadline=0.0, max_trials=10)
        budget.charge_trials(10)
        with pytest.raises(BudgetExceededError):
            budget.check_deadline()
        budget.reset()
        assert budget.trials_used == 0
        assert budget.elapsed() == 0.0

    def test_trials_are_charged_cumulatively(self):
        budget = EvaluationBudget(max_trials=100)
        budget.charge_trials(60)
        budget.charge_trials(40)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge_trials(1)
        assert excinfo.value.resource == "trials"
        # the failed charge is not booked
        assert budget.trials_used == 100

    def test_state_depth_sweep_gates(self):
        budget = EvaluationBudget(max_states=5, max_depth=3, max_sweeps=2)
        budget.check_states(5)
        with pytest.raises(BudgetExceededError):
            budget.check_states(6)
        budget.check_depth(3)
        with pytest.raises(BudgetExceededError):
            budget.check_depth(4)
        budget.check_sweeps(2)
        with pytest.raises(BudgetExceededError):
            budget.check_sweeps(3)

    def test_effective_trials_sheds_to_remaining(self):
        budget = EvaluationBudget(max_trials=1000)
        assert budget.effective_trials(5000) == 1000
        budget.charge_trials(400)
        assert budget.effective_trials(5000) == 600
        assert EvaluationBudget().effective_trials(5000) == 5000

    def test_effective_sweeps(self):
        assert EvaluationBudget(max_sweeps=3).effective_sweeps(10) == 3
        assert EvaluationBudget().effective_sweeps(10) == 10

    def test_error_message_names_resource_and_limit(self):
        error = BudgetExceededError("states", 10, 25, "chain solve")
        assert "states" in str(error)
        assert "10" in str(error)
        assert "chain solve" in str(error)


class TestEveryEvaluatorHonorsDeadline:
    """Deadline ~0 must produce a typed refusal from every entry point."""

    def test_numeric_evaluator(self):
        evaluator = ReliabilityEvaluator(
            local_assembly(), budget=EvaluationBudget(deadline=0.0)
        )
        with pytest.raises(BudgetExceededError):
            evaluator.pfail("search", **ACTUALS)

    def test_numeric_report(self):
        evaluator = ReliabilityEvaluator(
            local_assembly(), budget=EvaluationBudget(deadline=0.0)
        )
        with pytest.raises(BudgetExceededError):
            evaluator.report("search", **ACTUALS)

    def test_symbolic_evaluator(self):
        evaluator = SymbolicEvaluator(
            local_assembly(), budget=EvaluationBudget(deadline=0.0)
        )
        with pytest.raises(BudgetExceededError):
            evaluator.pfail_expression("search")

    def test_fixed_point_evaluator(self):
        evaluator = FixedPointEvaluator(
            recursive_assembly(), budget=EvaluationBudget(deadline=0.0)
        )
        with pytest.raises(BudgetExceededError):
            evaluator.pfail("A", size=1)

    def test_monte_carlo_simulator(self):
        simulator = MonteCarloSimulator(
            local_assembly(), seed=1, budget=EvaluationBudget(deadline=0.0)
        )
        with pytest.raises(BudgetExceededError):
            simulator.estimate_pfail("search", 100, **ACTUALS)

    def test_robust_evaluator_propagates_expired_deadline(self):
        from repro.runtime import RobustEvaluator

        evaluator = RobustEvaluator(
            local_assembly(), budget=EvaluationBudget(deadline=0.0)
        )
        # no lower tier can beat an expired clock: the chain re-raises
        with pytest.raises(BudgetExceededError) as excinfo:
            evaluator.evaluate("search", **ACTUALS)
        assert excinfo.value.resource == "deadline"


class TestResourceCaps:
    def test_sweep_cap_of_one_stops_fixed_point(self):
        evaluator = FixedPointEvaluator(
            recursive_assembly(), budget=EvaluationBudget(max_sweeps=1)
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            evaluator.pfail("A", size=1)
        assert excinfo.value.resource == "sweeps"

    def test_generous_sweep_cap_still_converges(self):
        from repro.scenarios import closed_form_pfail

        evaluator = FixedPointEvaluator(
            recursive_assembly(), budget=EvaluationBudget(max_sweeps=500)
        )
        expected, _ = closed_form_pfail()
        assert evaluator.pfail("A", size=1) == pytest.approx(expected, rel=1e-6)

    def test_state_cap_stops_chain_solve(self):
        evaluator = ReliabilityEvaluator(
            local_assembly(), budget=EvaluationBudget(max_states=1)
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            evaluator.pfail("search", **ACTUALS)
        assert excinfo.value.resource == "states"

    def test_depth_cap_stops_recursion(self):
        evaluator = ReliabilityEvaluator(
            local_assembly(), budget=EvaluationBudget(max_depth=1)
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            evaluator.pfail("search", **ACTUALS)
        assert excinfo.value.resource == "depth"

    def test_symbolic_depth_cap(self):
        evaluator = SymbolicEvaluator(
            local_assembly(), budget=EvaluationBudget(max_depth=1)
        )
        with pytest.raises(BudgetExceededError):
            evaluator.pfail_expression("search")

    def test_trial_cap_stops_simulation(self):
        simulator = MonteCarloSimulator(
            local_assembly(), seed=1, budget=EvaluationBudget(max_trials=50)
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            simulator.estimate_pfail("search", 100, **ACTUALS)
        assert excinfo.value.resource == "trials"

    def test_simulate_once_charges_one_trial(self):
        budget = EvaluationBudget(max_trials=3)
        simulator = MonteCarloSimulator(local_assembly(), seed=1, budget=budget)
        for _ in range(3):
            simulator.simulate_once("search", **ACTUALS)
        assert budget.trials_used == 3
        with pytest.raises(BudgetExceededError):
            simulator.simulate_once("search", **ACTUALS)

    def test_budget_within_limits_matches_unbudgeted(self):
        budget = EvaluationBudget(
            deadline=60.0, max_states=1000, max_depth=64, max_trials=10**6
        )
        with_budget = ReliabilityEvaluator(local_assembly(), budget=budget)
        without = ReliabilityEvaluator(local_assembly())
        assert with_budget.pfail("search", **ACTUALS) == pytest.approx(
            without.pfail("search", **ACTUALS)
        )
