"""Unit tests for the performance (expected-duration) extension."""

import math

import pytest

from repro.core import PerformanceEvaluator
from repro.errors import CyclicAssemblyError, EvaluationError, ModelError
from repro.model import (
    OR,
    AnalyticInterface,
    Assembly,
    CompositeService,
    CpuResource,
    FlowBuilder,
    KOfNCompletion,
    NetworkResource,
    ServiceRequest,
    SimpleService,
    perfect_connector,
)
from repro.model.parameters import FormalParameter
from repro.scenarios import (
    SearchSortParameters,
    local_assembly,
    recursive_assembly,
    remote_assembly,
)
from repro.symbolic import Constant, Parameter


class TestSimpleDurations:
    def test_cpu_duration_is_n_over_speed(self):
        cpu = CpuResource("cpu1", speed=2e6, failure_rate=1e-7).service()
        assert cpu.execution_time(N=1e6) == pytest.approx(0.5)

    def test_net_duration_is_b_over_bandwidth(self):
        net = NetworkResource("net", bandwidth=1e3, failure_rate=1e-3).service()
        assert net.execution_time(B=500) == pytest.approx(0.5)

    def test_perfect_connector_costs_nothing(self):
        assert perfect_connector("loc").execution_time() == 0.0

    def test_missing_duration_raises(self):
        service = SimpleService("blob", AnalyticInterface(), Constant(0.0))
        with pytest.raises(ModelError):
            service.execution_time()

    def test_duration_expression_validated(self):
        with pytest.raises(ModelError):
            SimpleService(
                "bad", AnalyticInterface(), Constant(0.0),
                duration=Parameter("mystery"),
            )


def build_parallel_assembly(completion, durations=(3.0, 1.0, 2.0)) -> Assembly:
    """One state with three fixed-duration providers under `completion`."""
    flow = (
        FlowBuilder(formals=())
        .state(
            "work",
            [ServiceRequest(f"p{i}", actuals={}) for i in range(len(durations))],
            completion=completion,
        )
        .sequence("work")
        .build()
    )
    app = CompositeService("app", AnalyticInterface(), flow)
    assembly = Assembly("parallel")
    assembly.add_service(app)
    for i, duration in enumerate(durations):
        assembly.add_service(
            SimpleService(
                f"p{i}", AnalyticInterface(), Constant(0.0),
                duration=Constant(duration),
            )
        )
        assembly.bind("app", f"p{i}", f"p{i}")
    return assembly


class TestCompletionSemantics:
    def test_and_completes_at_max(self):
        from repro.model import AND

        evaluator = PerformanceEvaluator(build_parallel_assembly(AND))
        assert evaluator.expected_duration("app") == pytest.approx(3.0)

    def test_or_completes_at_min(self):
        evaluator = PerformanceEvaluator(build_parallel_assembly(OR))
        assert evaluator.expected_duration("app") == pytest.approx(1.0)

    def test_k_of_n_completes_at_kth(self):
        evaluator = PerformanceEvaluator(
            build_parallel_assembly(KOfNCompletion(2))
        )
        assert evaluator.expected_duration("app") == pytest.approx(2.0)


class TestFlowSemantics:
    def test_visit_weighted_branching(self):
        """Start -q-> slow -> End ; Start -(1-q)-> End: E[T] = q * slow."""
        q = 0.25
        flow = (
            FlowBuilder(formals=())
            .state("slow", [ServiceRequest("p", actuals={})])
            .transition("Start", "slow", q)
            .transition("Start", "End", 1 - q)
            .transition("slow", "End", 1)
            .build()
        )
        app = CompositeService("app", AnalyticInterface(), flow)
        assembly = Assembly("branch")
        assembly.add_services(
            app,
            SimpleService("p", AnalyticInterface(), Constant(0.0),
                          duration=Constant(8.0)),
        )
        assembly.bind("app", "p", "p")
        assert PerformanceEvaluator(assembly).expected_duration("app") == (
            pytest.approx(q * 8.0)
        )

    def test_retry_loop_multiplies_visits(self):
        """work -> work w.p. r: E[visits] = 1/(1-r)."""
        r = 0.5
        flow = (
            FlowBuilder(formals=())
            .state("work", [ServiceRequest("p", actuals={})])
            .transition("Start", "work", 1)
            .transition("work", "work", r)
            .transition("work", "End", 1 - r)
            .build()
        )
        app = CompositeService("app", AnalyticInterface(), flow)
        assembly = Assembly("retry")
        assembly.add_services(
            app,
            SimpleService("p", AnalyticInterface(), Constant(0.0),
                          duration=Constant(2.0)),
        )
        assembly.bind("app", "p", "p")
        assert PerformanceEvaluator(assembly).expected_duration("app") == (
            pytest.approx(2.0 / (1 - r))
        )

    def test_connector_duration_serializes_with_provider(self):
        flow = (
            FlowBuilder(formals=())
            .state("work", [ServiceRequest("p", actuals={})])
            .sequence("work")
            .build()
        )
        app = CompositeService("app", AnalyticInterface(), flow)
        assembly = Assembly("conn")
        assembly.add_services(
            app,
            SimpleService("p", AnalyticInterface(), Constant(0.0),
                          duration=Constant(1.0)),
            SimpleService("wire", AnalyticInterface(), Constant(0.0),
                          duration=Constant(0.5)),
        )
        # wire is used as the connector
        from repro.model.connector import SimpleConnector

        assembly = Assembly("conn")
        assembly.add_services(
            app,
            SimpleService("p", AnalyticInterface(), Constant(0.0),
                          duration=Constant(1.0)),
            SimpleConnector("wire", AnalyticInterface(), Constant(0.0),
                            duration=Constant(0.5)),
        )
        assembly.bind("app", "p", "p", connector="wire")
        assert PerformanceEvaluator(assembly).expected_duration("app") == (
            pytest.approx(1.5)
        )


class TestSection4Performance:
    """The reliability/performance trade-off of the paper's example."""

    ACTUALS = {"elem": 1, "list": 500, "res": 1}

    def test_local_hand_computation(self):
        p = SearchSortParameters()
        evaluator = PerformanceEvaluator(local_assembly(p))
        log_list = math.log2(500)
        sort_work = 500 * log_list / p.s1          # sort1's cpu time
        lpc_work = p.lpc_operations / p.s1          # the LPC control transfer
        search_work = log_list / p.s1               # search's own cpu time
        expected = p.q * (sort_work + lpc_work) + search_work
        assert evaluator.expected_duration("search", **self.ACTUALS) == (
            pytest.approx(expected, rel=1e-12)
        )

    def test_remote_pays_the_network(self):
        p = SearchSortParameters()
        local = PerformanceEvaluator(local_assembly(p)).expected_duration(
            "search", **self.ACTUALS
        )
        remote = PerformanceEvaluator(remote_assembly(p)).expected_duration(
            "search", **self.ACTUALS
        )
        assert remote > 10 * local  # the wire dominates at b = 1e3

    def test_remote_duration_grows_with_list(self):
        evaluator = PerformanceEvaluator(remote_assembly())
        small = evaluator.expected_duration("search", elem=1, list=10, res=1)
        large = evaluator.expected_duration("search", elem=1, list=1000, res=1)
        assert large > small

    def test_state_durations_diagnostics(self):
        evaluator = PerformanceEvaluator(remote_assembly())
        breakdown = evaluator.state_durations("search", **self.ACTUALS)
        assert set(breakdown) == {"sort", "search"}
        sort_duration, sort_visits = breakdown["sort"]
        assert sort_visits == pytest.approx(0.9)
        assert sort_duration > breakdown["search"][0]


class TestErrors:
    def test_missing_actuals(self):
        evaluator = PerformanceEvaluator(local_assembly())
        with pytest.raises(EvaluationError):
            evaluator.expected_duration("search", elem=1)

    def test_cyclic_assembly_rejected(self):
        evaluator = PerformanceEvaluator(recursive_assembly())
        with pytest.raises(CyclicAssemblyError):
            evaluator.expected_duration("A", size=1)

    def test_undurationed_simple_service_reported(self):
        flow = (
            FlowBuilder(formals=())
            .state("work", [ServiceRequest("p", actuals={})])
            .sequence("work")
            .build()
        )
        app = CompositeService("app", AnalyticInterface(), flow)
        assembly = Assembly("nodur")
        assembly.add_services(
            app, SimpleService("p", AnalyticInterface(), Constant(0.0))
        )
        assembly.bind("app", "p", "p")
        with pytest.raises(EvaluationError) as excinfo:
            PerformanceEvaluator(assembly).expected_duration("app")
        assert "publishes no duration" in str(excinfo.value)

    def test_state_durations_on_simple_rejected(self):
        evaluator = PerformanceEvaluator(local_assembly())
        with pytest.raises(EvaluationError):
            evaluator.state_durations("cpu1", N=1)
