"""Unit tests for formal parameters and abstract domains."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model import (
    Direction,
    FiniteDomain,
    FormalParameter,
    IntegerDomain,
    RealDomain,
)


class TestRealDomain:
    def test_default_is_unbounded(self):
        domain = RealDomain()
        assert domain.contains(-1e300) and domain.contains(1e300)

    def test_bounds_inclusive(self):
        domain = RealDomain(0.0, 1.0)
        assert domain.contains(0.0) and domain.contains(1.0)
        assert not domain.contains(-0.001) and not domain.contains(1.001)

    def test_empty_interval_rejected(self):
        with pytest.raises(ModelError):
            RealDomain(2.0, 1.0)

    def test_describe(self):
        assert "real" in RealDomain(0, 1).describe()


class TestIntegerDomain:
    def test_accepts_integral_floats(self):
        assert IntegerDomain().contains(5.0)

    def test_rejects_fractional(self):
        assert not IntegerDomain().contains(5.5)

    def test_respects_bounds(self):
        domain = IntegerDomain(low=1, high=10)
        assert domain.contains(1) and domain.contains(10)
        assert not domain.contains(0) and not domain.contains(11)

    def test_default_low_is_zero(self):
        assert not IntegerDomain().contains(-1)

    def test_contains_all_array(self):
        assert IntegerDomain().contains_all(np.array([1.0, 2.0, 3.0]))
        assert not IntegerDomain().contains_all(np.array([1.0, 2.5]))

    def test_empty_interval_rejected(self):
        with pytest.raises(ModelError):
            IntegerDomain(low=5, high=2)


class TestFiniteDomain:
    def test_membership(self):
        domain = FiniteDomain((1.0, 2.0, 4.0))
        assert domain.contains(2.0) and not domain.contains(3.0)

    def test_values_coerced_to_float(self):
        assert FiniteDomain((1, 2)).contains(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            FiniteDomain(())

    def test_describe_sorted_unique(self):
        assert FiniteDomain((2.0, 1.0, 2.0)).describe() == "one of [1.0, 2.0]"


class TestFormalParameter:
    def test_defaults(self):
        param = FormalParameter("N")
        assert param.direction == Direction.IN
        assert isinstance(param.domain, IntegerDomain)

    def test_invalid_name_rejected(self):
        with pytest.raises(ModelError):
            FormalParameter("")
        with pytest.raises(ModelError):
            FormalParameter("not a name")

    def test_invalid_direction_rejected(self):
        with pytest.raises(ModelError):
            FormalParameter("N", direction="sideways")

    def test_invalid_domain_rejected(self):
        with pytest.raises(ModelError):
            FormalParameter("N", domain="integers")

    def test_out_direction(self):
        param = FormalParameter("res", direction=Direction.OUT)
        assert param.direction == "out"
