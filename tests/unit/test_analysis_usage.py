"""Unit tests for expected-invocation analysis and attribute sweeps."""

import numpy as np
import pytest

from repro.analysis import expected_invocations, sweep_attribute
from repro.errors import CyclicAssemblyError, EvaluationError
from repro.scenarios import (
    SearchSortParameters,
    local_assembly,
    recursive_assembly,
    remote_assembly,
    replicated_assembly,
)

ACTUALS = {"elem": 1, "list": 500, "res": 1}


class TestExpectedInvocations:
    def test_top_service_counts_once(self):
        profile = expected_invocations(local_assembly(), "search", **ACTUALS)
        assert profile.counts["search"] == 1.0

    def test_branch_probability_weights_the_sort_path(self):
        """sort1 is behind the q = 0.9 branch."""
        profile = expected_invocations(local_assembly(), "search", **ACTUALS)
        assert profile.counts["sort1"] == pytest.approx(0.9, abs=1e-9)
        assert profile.counts["lpc"] == pytest.approx(0.9, abs=1e-9)

    def test_q_zero_eliminates_sort_invocations(self):
        params = SearchSortParameters(q=0.0)
        profile = expected_invocations(local_assembly(params), "search", **ACTUALS)
        assert profile.counts.get("sort1", 0.0) == 0.0
        assert profile.counts.get("lpc", 0.0) == 0.0

    def test_rpc_fans_out_to_both_cpus_and_net(self):
        """Each sort call drives one RPC = 2 net transfers + 2 ops per cpu
        (marshal+unmarshal), weighted by the 0.9 branch and failure
        attenuation."""
        profile = expected_invocations(remote_assembly(), "search", **ACTUALS)
        # net12 is used twice per rpc invocation (ip and op transfers)
        assert profile.counts["net12"] > 1.5 * profile.counts["rpc"]
        # cpu1: search's own request + rpc marshal/unmarshal
        assert profile.counts["cpu1"] > profile.counts["cpu2"]

    def test_failure_attenuation(self):
        """With a very unreliable first state, later states are rarely
        reached: counts reflect the failure-aware visit expectations."""
        from dataclasses import replace

        lossy = replace(SearchSortParameters(), phi_sort1=1e-2)
        profile = expected_invocations(local_assembly(lossy), "search", **ACTUALS)
        healthy = expected_invocations(local_assembly(), "search", **ACTUALS)
        # the search state sits after the lossy sort state
        assert profile.counts["cpu1"] < healthy.counts["cpu1"]

    def test_replica_count_scales_db_invocations(self):
        profile = expected_invocations(
            replicated_assembly(5, shared=True), "report", size=100
        )
        assert profile.counts["db"] == pytest.approx(5.0, abs=1e-9)

    def test_most_invoked_excludes_top_service(self):
        profile = expected_invocations(local_assembly(), "search", **ACTUALS)
        names = [name for name, _ in profile.most_invoked()]
        assert "search" not in names
        assert names[0] == "cpu1"

    def test_cyclic_assembly_rejected(self):
        with pytest.raises(CyclicAssemblyError):
            expected_invocations(recursive_assembly(), "A", size=1)

    def test_str_rendering(self):
        profile = expected_invocations(local_assembly(), "search", **ACTUALS)
        text = str(profile)
        assert "expected invocations" in text and "cpu1" in text


class TestAttributeSweep:
    def test_reproduces_figure6_gamma_column(self):
        """Sweeping net12::failure_rate must match rebuilding the assembly
        per gamma (the Figure 6 outer loop, done the cheap way)."""
        from repro.core import ReliabilityEvaluator

        assembly = remote_assembly()
        gammas = np.array([5e-3, 2.5e-2, 5e-2, 1e-1])
        sweep = sweep_attribute(
            assembly, "search", "net12::failure_rate", gammas,
            {"elem": 1, "list": 1000, "res": 1},
        )
        for gamma, pfail in zip(gammas, sweep.pfail):
            params = SearchSortParameters().with_figure6_point(1e-6, float(gamma))
            direct = ReliabilityEvaluator(remote_assembly(params)).pfail(
                "search", elem=1, list=1000, res=1
            )
            assert pfail == pytest.approx(direct, rel=1e-9)

    def test_monotone_in_failure_rate(self):
        sweep = sweep_attribute(
            remote_assembly(), "search", "net12::failure_rate",
            np.linspace(1e-4, 1e-1, 20), {"elem": 1, "list": 500, "res": 1},
        )
        assert np.all(np.diff(sweep.pfail) > 0)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(EvaluationError):
            sweep_attribute(
                remote_assembly(), "search", "net12::flux_capacitance",
                [0.1], {"elem": 1, "list": 10, "res": 1},
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(EvaluationError):
            sweep_attribute(
                remote_assembly(), "search", "net12::failure_rate", [],
                {"elem": 1, "list": 10, "res": 1},
            )

    def test_result_labels_attribute_as_parameter(self):
        sweep = sweep_attribute(
            remote_assembly(), "search", "net12::failure_rate",
            [1e-3, 1e-2], {"elem": 1, "list": 10, "res": 1},
        )
        assert sweep.parameter == "net12::failure_rate"
