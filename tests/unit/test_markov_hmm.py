"""Unit tests for the Hidden Markov Model module."""

import numpy as np
import pytest

from repro.errors import InvalidDistributionError, MarkovError
from repro.markov import HiddenMarkovModel


def noisy_switch(p_stay: float = 0.9, p_correct: float = 0.95) -> HiddenMarkovModel:
    """Two hidden states emitting their own index with high probability."""
    return HiddenMarkovModel(
        initial=np.array([1.0, 0.0]),
        transition=np.array([[p_stay, 1 - p_stay], [1 - p_stay, p_stay]]),
        emission=np.array(
            [[p_correct, 1 - p_correct], [1 - p_correct, p_correct]]
        ),
        state_labels=("calm", "busy"),
    )


class TestConstruction:
    def test_valid_model(self):
        model = noisy_switch()
        assert model.n_states == 2
        assert model.n_symbols == 2

    def test_bad_initial_rejected(self):
        with pytest.raises(InvalidDistributionError):
            HiddenMarkovModel(
                np.array([0.5, 0.4]), np.eye(2), np.eye(2)
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidDistributionError):
            HiddenMarkovModel(np.array([1.0]), np.eye(2), np.eye(2))

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(InvalidDistributionError):
            HiddenMarkovModel(
                np.array([1.0, 0.0]), np.eye(2), np.eye(2), state_labels=("one",)
            )


class TestInference:
    def test_likelihood_prefers_consistent_trace(self):
        model = noisy_switch()
        consistent = model.log_likelihood([0, 0, 0, 0, 0])
        jumpy = model.log_likelihood([0, 1, 0, 1, 0])
        assert consistent > jumpy

    def test_forward_scaling_normalizes(self):
        model = noisy_switch()
        alpha, scale = model.forward([0, 1, 0])
        np.testing.assert_allclose(alpha.sum(axis=1), 1.0)
        assert scale.shape == (3,)

    def test_viterbi_decodes_clean_trace(self):
        model = noisy_switch()
        path = model.viterbi([0, 0, 0, 1, 1, 1])
        assert path == ["calm", "calm", "calm", "busy", "busy", "busy"]

    def test_viterbi_smooths_single_outlier(self):
        model = noisy_switch(p_stay=0.95, p_correct=0.8)
        path = model.viterbi([0, 0, 1, 0, 0])
        assert path == ["calm"] * 5

    def test_empty_trace_rejected(self):
        with pytest.raises(MarkovError):
            noisy_switch().forward([])

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(MarkovError):
            noisy_switch().forward([0, 2])

    def test_impossible_trace_rejected(self):
        model = HiddenMarkovModel(
            np.array([1.0]), np.array([[1.0]]), np.array([[1.0, 0.0]])
        )
        with pytest.raises(MarkovError):
            model.forward([1])


class TestBaumWelch:
    def test_improves_likelihood(self):
        rng = np.random.default_rng(0)
        true = noisy_switch(p_stay=0.85, p_correct=0.9)
        # sample traces from the true model
        traces = []
        for _ in range(5):
            state = 0
            trace = []
            for _ in range(60):
                trace.append(
                    int(rng.random() >= true.emission[state, state])
                    if state == 0
                    else int(rng.random() < true.emission[state, state])
                )
                state = int(rng.random() >= true.transition[state, state]) ^ state
            traces.append(trace)
        start = noisy_switch(p_stay=0.6, p_correct=0.7)
        before = sum(start.log_likelihood(t) for t in traces)
        fitted = start.baum_welch(traces, iterations=20)
        after = sum(fitted.log_likelihood(t) for t in traces)
        assert after >= before

    def test_requires_traces(self):
        with pytest.raises(MarkovError):
            noisy_switch().baum_welch([])

    def test_returns_new_model(self):
        model = noisy_switch()
        fitted = model.baum_welch([[0, 0, 1, 1]], iterations=2)
        assert fitted is not model


class TestToChain:
    def test_exports_usage_profile(self):
        chain = noisy_switch(p_stay=0.7).to_chain()
        assert chain.states == ("calm", "busy")
        assert chain.probability("calm", "busy") == pytest.approx(0.3)
