"""Unit tests for the grouped-sharing extension (section 6's "more complex
dependencies").

A state's requests partition into dependency groups: within a multi-request
group, one external failure kills the group (the paper's sharing model);
distinct groups are independent.  The extension must reduce exactly to the
paper's two binary cases and agree across the numeric, symbolic and Monte
Carlo semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ReliabilityEvaluator,
    SymbolicEvaluator,
    grouped_state_failure_probability,
    state_failure_probability,
)
from repro.errors import InvalidFlowError, InvalidSharingError, ModelError
from repro.model import (
    AND,
    OR,
    AnalyticInterface,
    Assembly,
    CompositeService,
    FlowBuilder,
    FlowState,
    KOfNCompletion,
    ServiceRequest,
    SimpleService,
    perfect_connector,
)
from repro.simulation import MonteCarloSimulator
from repro.symbolic import Constant

probabilities = st.floats(min_value=0.0, max_value=1.0)

INTERNAL = [0.05, 0.02, 0.04, 0.01]
EXTERNAL = [0.1, 0.03, 0.07, 0.02]


class TestGroupedMath:
    def test_all_singletons_is_no_sharing(self):
        groups = [(0,), (1,), (2,), (3,)]
        for completion in (AND, OR, KOfNCompletion(2)):
            assert grouped_state_failure_probability(
                completion, groups, INTERNAL, EXTERNAL
            ) == pytest.approx(
                state_failure_probability(completion, False, INTERNAL, EXTERNAL),
                abs=1e-14,
            )

    def test_one_full_group_is_the_paper_sharing_model(self):
        groups = [(0, 1, 2, 3)]
        for completion in (AND, OR, KOfNCompletion(3)):
            assert grouped_state_failure_probability(
                completion, groups, INTERNAL, EXTERNAL
            ) == pytest.approx(
                state_failure_probability(completion, True, INTERNAL, EXTERNAL),
                abs=1e-14,
            )

    def test_two_pairs_by_hand(self):
        """Two independent shared pairs under AND: the state survives iff
        every request survives; by the eq. 11 identity each pair behaves as
        independent requests, so the whole thing equals no-sharing AND."""
        groups = [(0, 1), (2, 3)]
        value = grouped_state_failure_probability(AND, groups, INTERNAL, EXTERNAL)
        assert value == pytest.approx(
            state_failure_probability(AND, False, INTERNAL, EXTERNAL), abs=1e-14
        )

    def test_or_two_pairs_between_extremes(self):
        """For OR, two shared pairs are worse than full independence but
        better than one shared group of four."""
        independent = state_failure_probability(OR, False, INTERNAL, EXTERNAL)
        paired = grouped_state_failure_probability(
            OR, [(0, 1), (2, 3)], INTERNAL, EXTERNAL
        )
        fully_shared = state_failure_probability(OR, True, INTERNAL, EXTERNAL)
        assert independent < paired < fully_shared

    def test_or_two_pairs_closed_form(self):
        """OR fails iff all four requests fail.  With pairs (0,1), (2,3),
        pair g fails-all with probability
        ``(1 - noext_g) + noext_g * pi_a * pi_b`` — independence across
        pairs multiplies them."""
        def pair_all_fail(a, b):
            no_ext = (1 - EXTERNAL[a]) * (1 - EXTERNAL[b])
            return (1 - no_ext) + no_ext * INTERNAL[a] * INTERNAL[b]

        expected = pair_all_fail(0, 1) * pair_all_fail(2, 3)
        assert grouped_state_failure_probability(
            OR, [(0, 1), (2, 3)], INTERNAL, EXTERNAL
        ) == pytest.approx(expected, abs=1e-14)

    def test_masking_supported(self):
        masked = grouped_state_failure_probability(
            OR, [(0, 1), (2, 3)], INTERNAL, EXTERNAL, [0.5] * 4
        )
        unmasked = grouped_state_failure_probability(
            OR, [(0, 1), (2, 3)], INTERNAL, EXTERNAL
        )
        assert masked < unmasked

    def test_bad_partition_rejected(self):
        with pytest.raises(ModelError):
            grouped_state_failure_probability(OR, [(0, 1)], INTERNAL, EXTERNAL)
        with pytest.raises(ModelError):
            grouped_state_failure_probability(
                OR, [(0, 1), (1, 2, 3)], INTERNAL, EXTERNAL
            )

    @given(
        st.lists(probabilities, min_size=4, max_size=4),
        st.lists(probabilities, min_size=4, max_size=4),
    )
    @settings(max_examples=200)
    def test_or_monotone_in_group_coarseness(self, internal, external):
        """Coarser partitions (more sharing) never help under OR."""
        fine = grouped_state_failure_probability(
            OR, [(0,), (1,), (2,), (3,)], internal, external
        )
        pairs = grouped_state_failure_probability(
            OR, [(0, 1), (2, 3)], internal, external
        )
        coarse = grouped_state_failure_probability(
            OR, [(0, 1, 2, 3)], internal, external
        )
        assert fine <= pairs + 1e-12
        assert pairs <= coarse + 1e-12


class TestFlowStateGroups:
    def request(self, target="db"):
        return ServiceRequest(target, actuals={})

    def test_effective_groups_default(self):
        state = FlowState("s", (self.request(), self.request()))
        assert state.effective_groups() == ((0,), (1,))

    def test_effective_groups_shared(self):
        state = FlowState("s", (self.request(), self.request()), shared=True)
        assert state.effective_groups() == ((0, 1),)

    def test_explicit_groups(self):
        state = FlowState(
            "s",
            (self.request("a"), self.request("a"), self.request("b")),
            sharing_groups=((0, 1), (2,)),
        )
        assert state.effective_groups() == ((0, 1), (2,))

    def test_shared_and_groups_mutually_exclusive(self):
        with pytest.raises(InvalidFlowError):
            FlowState(
                "s", (self.request(), self.request()),
                shared=True, sharing_groups=((0, 1),),
            )

    def test_non_partition_rejected(self):
        with pytest.raises(InvalidFlowError):
            FlowState(
                "s", (self.request(), self.request()),
                sharing_groups=((0,),),
            )

    def test_group_target_restriction(self):
        state = FlowState(
            "s",
            (self.request("a"), self.request("b")),
            sharing_groups=((0, 1),),
        )
        with pytest.raises(InvalidSharingError):
            state.check_sharing_restriction()


def grouped_assembly() -> Assembly:
    """Four OR-redundant queries: two to shared db_a, two to shared db_b."""
    requests = (
        [ServiceRequest("db_a", actuals={}, internal_failure=Constant(0.05))] * 2
        + [ServiceRequest("db_b", actuals={}, internal_failure=Constant(0.02))] * 2
    )
    flow = (
        FlowBuilder(formals=())
        .state(
            "query", requests, completion=OR,
            shared=False,
        )
        .sequence("query")
        .build()
    )
    # rebuild the state with explicit groups (FlowBuilder keeps it simple)
    state = FlowState(
        "query", tuple(requests), completion=OR,
        sharing_groups=((0, 1), (2, 3)),
    )
    from repro.model.flow import ServiceFlow

    flow = ServiceFlow((), [state], flow.transitions)
    app = CompositeService("app", AnalyticInterface(), flow)
    assembly = Assembly("grouped")
    assembly.add_services(
        app,
        SimpleService("db_a", AnalyticInterface(), Constant(0.2)),
        SimpleService("db_b", AnalyticInterface(), Constant(0.1)),
        perfect_connector("loc_a"),
        perfect_connector("loc_b"),
    )
    assembly.bind("app", "db_a", "db_a", connector="loc_a")
    assembly.bind("app", "db_b", "db_b", connector="loc_b")
    return assembly


class TestGroupedThroughTheStack:
    def test_numeric_evaluator(self):
        pfail = ReliabilityEvaluator(grouped_assembly()).pfail("app")
        expected = grouped_state_failure_probability(
            OR, [(0, 1), (2, 3)],
            [0.05, 0.05, 0.02, 0.02],
            [0.2, 0.2, 0.1, 0.1],
        )
        assert pfail == pytest.approx(expected, abs=1e-12)

    def test_symbolic_matches_numeric(self):
        assembly = grouped_assembly()
        numeric = ReliabilityEvaluator(assembly).pfail("app")
        expression = SymbolicEvaluator(assembly).pfail_expression("app")
        assert float(expression.evaluate({})) == pytest.approx(numeric, abs=1e-12)

    def test_simulator_consistent(self):
        assembly = grouped_assembly()
        analytic = ReliabilityEvaluator(assembly).pfail("app")
        result = MonteCarloSimulator(assembly, seed=17).estimate_pfail("app", 40_000)
        assert result.consistent_with(analytic), (analytic, result)

    def test_dsl_round_trip(self):
        from repro.dsl import dump_assembly, load_assembly

        assembly = grouped_assembly()
        rebuilt = load_assembly(dump_assembly(assembly))
        state = rebuilt.service("app").flow.state("query")
        assert state.sharing_groups == ((0, 1), (2, 3))
        assert ReliabilityEvaluator(rebuilt).pfail("app") == pytest.approx(
            ReliabilityEvaluator(assembly).pfail("app"), abs=1e-15
        )

    def test_validation_accepts_well_formed_groups(self):
        from repro.model import validate_assembly

        assert validate_assembly(grouped_assembly()).ok
