"""Unit tests for the CLI (the section 5 'prediction engine' binding)."""

import json

import pytest

from repro.cli import main
from repro.core import ReliabilityEvaluator
from repro.scenarios import local_assembly


@pytest.fixture
def local_file(tmp_path):
    path = tmp_path / "local.json"
    assert main(["export-scenario", "local", "-o", str(path)]) == 0
    return str(path)


@pytest.fixture
def remote_file(tmp_path):
    path = tmp_path / "remote.json"
    assert main(["export-scenario", "remote", "-o", str(path)]) == 0
    return str(path)


class TestExportScenario:
    def test_writes_valid_json(self, local_file):
        from pathlib import Path

        data = json.loads(Path(local_file).read_text())
        assert data["schema"] == "repro/1"
        assert data["name"] == "local"

    def test_stdout_mode(self, capsys):
        assert main(["export-scenario", "shared-db"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["name"] == "shared-db"

    def test_unknown_scenario_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["export-scenario", "nonexistent"])
        assert excinfo.value.code == 2


class TestValidate:
    def test_valid_assembly(self, local_file, capsys):
        assert main(["validate", local_file]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_assembly_exits_nonzero(self, tmp_path, capsys):
        broken = {
            "schema": "repro/1",
            "name": "broken",
            "services": [
                {
                    "kind": "composite", "name": "app",
                    "interface": {"parameters": [{"name": "n"}]},
                    "flow": {
                        "formals": ["n"],
                        "states": [
                            {"name": "s",
                             "requests": [{"target": "missing",
                                           "actuals": {}}]}
                        ],
                        "transitions": [
                            {"source": "Start", "target": "s", "probability": 1},
                            {"source": "s", "target": "End", "probability": 1},
                        ],
                    },
                }
            ],
            "bindings": [],
        }
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(broken))
        assert main(["validate", str(path)]) == 1
        assert "error" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["validate", "/does/not/exist.json"]) == 1
        assert "error" in capsys.readouterr().err


class TestEvaluate:
    def test_matches_library(self, local_file, capsys):
        assert main(
            ["evaluate", local_file, "search",
             "--set", "elem=1", "list=500", "res=1"]
        ) == 0
        out = capsys.readouterr().out
        expected = ReliabilityEvaluator(local_assembly()).pfail(
            "search", elem=1, list=500, res=1
        )
        assert f"{expected:.9e}" in out

    def test_report_mode(self, local_file, capsys):
        assert main(
            ["evaluate", local_file, "search", "--report",
             "--set", "elem=1", "list=500", "res=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "state" in out and "sort" in out

    def test_bad_binding_syntax(self, local_file, capsys):
        assert main(
            ["evaluate", local_file, "search", "--set", "elem"]
        ) == 10
        assert "name=value" in capsys.readouterr().err

    def test_non_numeric_binding(self, local_file, capsys):
        assert main(
            ["evaluate", local_file, "search", "--set", "elem=abc"]
        ) == 10

    def test_missing_actuals_reported(self, local_file, capsys):
        # EvaluationError maps to exit code 6 in the taxonomy
        assert main(["evaluate", local_file, "search"]) == 6
        assert "missing" in capsys.readouterr().err

    def test_fixed_point_flag_on_recursive_assembly(self, tmp_path, capsys):
        from repro.dsl import dump_assembly
        from repro.scenarios import recursive_assembly

        path = tmp_path / "recursive.json"
        path.write_text(dump_assembly(recursive_assembly()))
        # the default evaluator refuses (EvaluationError -> exit code 6)
        assert main(["evaluate", str(path), "A", "--set", "size=1"]) == 6
        assert "cyclic" in capsys.readouterr().err
        # the fixed-point engine solves it
        assert main(
            ["evaluate", str(path), "A", "--fixed-point", "--set", "size=1"]
        ) == 0


class TestClosedForm:
    def test_derives_expression(self, local_file, capsys):
        assert main(["closed-form", local_file, "search"]) == 0
        out = capsys.readouterr().out
        assert "log2(list)" in out

    def test_symbolic_attributes(self, local_file, capsys):
        assert main(
            ["closed-form", local_file, "search", "--symbolic-attributes"]
        ) == 0
        assert "sort1::software_failure_rate" in capsys.readouterr().out


class TestSweepAndCompare:
    def test_sweep(self, local_file, capsys):
        assert main(
            ["sweep", local_file, "search", "list",
             "--from", "1", "--to", "1000", "--points", "5",
             "--set", "elem=1", "res=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "reliability vs list" in out

    def test_compare_reports_crossover(self, local_file, remote_file, capsys):
        assert main(
            ["compare", local_file, remote_file, "search", "list",
             "--from", "1", "--to", "1000", "--points", "30",
             "--set", "elem=1", "res=1"]
        ) == 0
        assert "ranking flips" in capsys.readouterr().out


class TestInvocationsAndSimulate:
    def test_invocations(self, local_file, capsys):
        assert main(
            ["invocations", local_file, "search",
             "--set", "elem=1", "list=500", "res=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "cpu1" in out and "expected invocations" in out

    def test_simulate(self, local_file, capsys):
        assert main(
            ["simulate", local_file, "search", "--trials", "500",
             "--seed", "1", "--set", "elem=1", "list=500", "res=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Wilson" in out


class TestUncertainty:
    def test_reports_interval_and_contributions(self, remote_file, capsys):
        assert main(
            ["uncertainty", remote_file, "search",
             "--relative-std", "0.2", "--samples", "2000", "--seed", "1",
             "--set", "elem=1", "list=500", "res=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "95% interval" in out
        assert "variance contributions" in out
        assert "net12::failure_rate" in out


class TestDescribe:
    def test_renders_assembly_and_flows(self, local_file, capsys):
        assert main(["describe", local_file]) == 0
        out = capsys.readouterr().out
        assert "assembly 'local'" in out
        assert "flow of 'search'" in out


class TestPerformance:
    def test_reports_duration_and_breakdown(self, local_file, capsys):
        assert main(
            ["performance", local_file, "search",
             "--set", "elem=1", "list=500", "res=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "E[T](search)" in out
        assert "per-state breakdown" in out
        assert "sort" in out


class TestBatch:
    def test_multi_model_multi_point(self, local_file, remote_file, capsys):
        assert main(
            ["batch", "search", "--model", local_file, "--model", remote_file,
             "--at", "elem=1", "list=500", "res=1",
             "--at", "elem=1", "list=1000", "res=1"]
        ) == 0
        out = capsys.readouterr().out
        # 2 models x 2 points, plus the stats footer
        assert out.count("Pfail = ") == 4
        assert "4 evaluations over 2 plans" in out
        expected = ReliabilityEvaluator(local_assembly()).pfail(
            "search", elem=1, list=500, res=1
        )
        assert f"{expected:.9e}" in out

    def test_parallel_matches_serial_output(self, local_file, capsys):
        argv = ["batch", "search", "--model", local_file,
                "--at", "elem=1", "list=500", "res=1",
                "--at", "elem=1", "list=1000", "res=1"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # identical per-entry lines; only the stats footer may differ
        assert (
            [l for l in serial.splitlines() if "Pfail" in l]
            == [l for l in parallel.splitlines() if "Pfail" in l]
        )

    def test_default_point_from_domains(self, local_file, capsys):
        assert main(["batch", "search", "--model", local_file]) == 0
        assert "Pfail = " in capsys.readouterr().out

    def test_entry_failure_sets_exit_code(self, local_file, capsys):
        assert main(
            ["batch", "search", "--model", local_file,
             "--at", "elem=1", "list=nan", "res=1"]
        ) != 0
        assert "error[" in capsys.readouterr().out

    def test_expired_deadline_exits_with_budget_code(self, local_file, capsys):
        code = main(
            ["batch", "search", "--model", local_file,
             "--at", "elem=1", "list=500", "res=1",
             "--deadline", "0.0"]
        )
        assert code != 0


class TestJobsFlag:
    def test_sweep_jobs_matches_serial(self, local_file, capsys):
        def without_cache_footer(text: str) -> str:
            # the kernel-cache counters warm up between runs; everything
            # else (the actual sweep table) must be byte-identical
            return "\n".join(
                line for line in text.splitlines()
                if not line.startswith("kernel cache:")
            )

        argv = ["sweep", local_file, "search", "list",
                "--from", "1", "--to", "1000", "--points", "7",
                "--set", "elem=1", "res=1"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert "kernel cache:" in serial
        assert main(argv + ["--jobs", "2"]) == 0
        assert without_cache_footer(capsys.readouterr().out) == (
            without_cache_footer(serial)
        )

    def test_simulate_jobs_accepted(self, local_file, capsys):
        assert main(
            ["simulate", local_file, "search", "--trials", "400",
             "--seed", "1", "--jobs", "2",
             "--set", "elem=1", "list=500", "res=1"]
        ) == 0
        assert "Wilson" in capsys.readouterr().out

    def test_negative_jobs_is_usage_error(self, local_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", local_file, "search", "list",
                  "--from", "1", "--to", "10", "--points", "3",
                  "--set", "elem=1", "res=1", "--jobs", "-2"])
        assert excinfo.value.code == 2


class TestSolverFlag:
    EVALUATE = ["search", "--set", "elem=1", "list=500", "res=1"]

    def test_dense_matches_default(self, local_file, capsys):
        assert main(["evaluate", local_file] + self.EVALUATE) == 0
        default = capsys.readouterr().out
        assert main(
            ["evaluate", local_file, "--solver", "dense"] + self.EVALUATE
        ) == 0
        assert capsys.readouterr().out == default

    def test_sparse_matches_default(self, local_file, capsys):
        from repro.markov import scipy_available

        if not scipy_available():
            pytest.skip("sparse backend requires scipy")
        assert main(["evaluate", local_file] + self.EVALUATE) == 0
        default = capsys.readouterr().out
        assert main(
            ["evaluate", local_file, "--solver", "sparse"] + self.EVALUATE
        ) == 0
        assert capsys.readouterr().out == default

    def test_unknown_solver_is_usage_error(self, local_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["evaluate", local_file, "--solver", "banded"]
                 + self.EVALUATE)
        assert excinfo.value.code == 2

    def test_sweep_numeric_solver_matches(self, local_file, capsys):
        argv = ["sweep", local_file, "search", "list",
                "--from", "1", "--to", "1000", "--points", "5",
                "--method", "numeric", "--set", "elem=1", "res=1"]
        assert main(argv) == 0
        default = capsys.readouterr().out
        assert main(argv + ["--solver", "dense"]) == 0
        assert capsys.readouterr().out == default
