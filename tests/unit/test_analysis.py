"""Unit tests for the analysis layer: sweeps, crossovers, comparison,
selection, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    Crossover,
    bisect_crossover,
    compare_assemblies,
    find_crossovers,
    format_comparison,
    format_sweep,
    format_table,
    select_assembly,
    sparkline,
    sweep_parameter,
)
from repro.core import ReliabilityEvaluator
from repro.errors import EvaluationError
from repro.scenarios import (
    SearchSortParameters,
    build_sort_component,
    local_assembly,
    remote_assembly,
)

FIXED = {"elem": 1, "res": 1}
GRID = np.linspace(1, 1000, 25)


class TestSweep:
    def test_symbolic_and_numeric_agree(self):
        assembly = local_assembly()
        symbolic = sweep_parameter(assembly, "search", "list", GRID, FIXED, "symbolic")
        numeric = sweep_parameter(assembly, "search", "list", GRID, FIXED, "numeric")
        np.testing.assert_allclose(symbolic.pfail, numeric.pfail, rtol=1e-10)

    def test_reliability_complements(self):
        sweep = sweep_parameter(local_assembly(), "search", "list", GRID, FIXED)
        np.testing.assert_allclose(sweep.reliability, 1.0 - sweep.pfail)

    def test_at_grid_point(self):
        sweep = sweep_parameter(local_assembly(), "search", "list", [10, 20], FIXED)
        assert sweep.at(20) == sweep.pfail[1]
        with pytest.raises(EvaluationError):
            sweep.at(15)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(EvaluationError):
            sweep_parameter(local_assembly(), "search", "bogus", GRID, FIXED)

    def test_unknown_method_rejected(self):
        with pytest.raises(EvaluationError):
            sweep_parameter(local_assembly(), "search", "list", GRID, FIXED, "magic")

    def test_empty_grid_rejected(self):
        with pytest.raises(EvaluationError):
            sweep_parameter(local_assembly(), "search", "list", [], FIXED)

    def test_rows(self):
        sweep = sweep_parameter(local_assembly(), "search", "list", [10.0], FIXED)
        rows = sweep.rows()
        assert len(rows) == 1
        value, pfail, reliability = rows[0]
        assert reliability == pytest.approx(1 - pfail)


class TestCrossovers:
    def test_linear_interpolation(self):
        grid = np.array([0.0, 1.0, 2.0])
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([1.0, 1.0, 1.0])
        crossings = find_crossovers(grid, a, b)
        assert len(crossings) == 1
        assert crossings[0].location == pytest.approx(1.0)
        assert crossings[0].sign_before == -1

    def test_no_crossing(self):
        grid = np.array([0.0, 1.0])
        assert find_crossovers(grid, [0.0, 0.1], [1.0, 1.1]) == []

    def test_multiple_crossings(self):
        grid = np.linspace(0, 4 * np.pi, 400)
        crossings = find_crossovers(grid, np.sin(grid), np.zeros_like(grid))
        # interior sign changes at pi, 2pi, 3pi
        assert len(crossings) == 3
        assert crossings[0].location == pytest.approx(np.pi, abs=1e-1)
        assert crossings[1].location == pytest.approx(2 * np.pi, abs=1e-1)

    def test_tie_on_grid_point_reported_once(self):
        grid = np.array([0.0, 1.0, 2.0])
        crossings = find_crossovers(grid, [0.0, 1.0, 2.0], [1.0, 1.0, 1.0])
        assert len(crossings) == 1
        assert crossings[0].location == pytest.approx(1.0)

    def test_touch_without_sign_change_not_reported(self):
        grid = np.array([0.0, 1.0, 2.0])
        # curves touch at the middle point but A stays below B
        crossings = find_crossovers(grid, [0.0, 1.0, 0.0], [1.0, 1.0, 1.0])
        assert crossings == []

    def test_refinement_via_bisection(self):
        grid = np.array([1.0, 3.0])
        f = lambda x: x * x - 4.0  # root at 2
        crossings = find_crossovers(grid, grid**2, np.full_like(grid, 4.0), refine=f)
        assert crossings[0].location == pytest.approx(2.0, abs=1e-8)

    def test_bisect_requires_bracket(self):
        with pytest.raises(EvaluationError):
            bisect_crossover(lambda x: x + 10, 0.0, 1.0)

    def test_bisect_exact_endpoint(self):
        assert bisect_crossover(lambda x: x, 0.0, 1.0) == 0.0

    def test_unsorted_grid_rejected(self):
        with pytest.raises(EvaluationError):
            find_crossovers([1.0, 0.5], [0, 1], [1, 0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            find_crossovers([1.0, 2.0], [0.0], [1.0, 2.0])


class TestComparison:
    def make(self, gamma=5e-3):
        p = SearchSortParameters().with_figure6_point(1e-6, gamma)
        return compare_assemblies(
            local_assembly(p), remote_assembly(p), "search", "list", GRID, FIXED
        )

    def test_crossover_found_at_low_gamma(self):
        comparison = self.make(gamma=5e-3)
        assert comparison.crossovers
        assert comparison.dominant() is None

    def test_local_dominates_at_high_gamma(self):
        comparison = self.make(gamma=1e-1)
        assert comparison.dominant() == "local"
        assert not comparison.crossovers

    def test_winner_at_grid_points(self):
        comparison = self.make(gamma=5e-3)
        assert comparison.winner_at(1.0) == "local"
        assert comparison.winner_at(1000.0) == "remote"

    def test_max_advantage_positive(self):
        winner, at, gain = self.make(gamma=1e-1).max_advantage()
        assert winner == "local"
        assert gain > 0.0

    def test_same_name_rejected(self):
        assembly = local_assembly()
        with pytest.raises(EvaluationError):
            compare_assemblies(assembly, assembly, "search", "list", GRID, FIXED)

    def test_rows_name_winner(self):
        rows = self.make(gamma=1e-1).rows()
        assert all(r[3] == "local" for r in rows)


class TestSelection:
    def test_selection_prefers_reliable_assembly(self):
        p_low_gamma = SearchSortParameters().with_figure6_point(1e-6, 5e-3)

        def build(kind):
            return local_assembly(p_low_gamma) if kind == "local" else remote_assembly(p_low_gamma)

        ranked = select_assembly(
            ["local", "remote"], build, "search",
            {"elem": 1, "list": 1000, "res": 1},
        )
        assert ranked[0].candidate == "remote"  # Figure 6: remote wins at low gamma
        assert ranked[0].reliability > ranked[1].reliability

    def test_failed_candidates_kept_with_error(self):
        def build(kind):
            if kind == "broken":
                from repro.model import Assembly

                return Assembly("broken")  # no services: evaluation will fail
            return local_assembly()

        ranked = select_assembly(
            ["ok", "broken"], build, "search", {"elem": 1, "list": 10, "res": 1}
        )
        assert ranked[0].candidate == "ok" and ranked[0].ok
        assert ranked[1].candidate == "broken" and not ranked[1].ok
        assert ranked[1].error

    def test_empty_candidates_rejected(self):
        with pytest.raises(EvaluationError):
            select_assembly([], lambda c: local_assembly(), "search", {})

    def test_matches_direct_evaluation(self):
        ranked = select_assembly(
            ["only"], lambda c: local_assembly(), "search",
            {"elem": 1, "list": 100, "res": 1},
        )
        direct = ReliabilityEvaluator(local_assembly()).pfail(
            "search", elem=1, list=100, res=1
        )
        assert ranked[0].pfail == pytest.approx(direct)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1.0, "x"], [22.5, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # fixed width

    def test_sparkline_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_format_sweep_renders(self):
        sweep = sweep_parameter(local_assembly(), "search", "list", GRID, FIXED)
        text = format_sweep(sweep)
        assert "local / search" in text
        assert "Pfail" in text

    def test_format_comparison_mentions_crossover(self):
        p = SearchSortParameters().with_figure6_point(1e-6, 5e-3)
        comparison = compare_assemblies(
            local_assembly(p), remote_assembly(p), "search", "list", GRID, FIXED
        )
        text = format_comparison(comparison)
        assert "ranking flips" in text

    def test_format_comparison_mentions_dominance(self):
        p = SearchSortParameters().with_figure6_point(1e-6, 1e-1)
        comparison = compare_assemblies(
            local_assembly(p), remote_assembly(p), "search", "list", GRID, FIXED
        )
        assert "dominates" in format_comparison(comparison)
