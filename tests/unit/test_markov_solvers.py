"""Unit tests for the pluggable linear-solver backends (repro.markov.solvers)."""

import numpy as np
import pytest

from repro.caching import LRUCache
from repro.errors import EvaluationError, NotAbsorbingError
from repro.markov import AbsorbingChainAnalysis, DiscreteTimeMarkovChain
from repro.markov import solvers
from repro.markov.solvers import (
    SOLVERS,
    SingularSystemError,
    chain_fingerprint,
    chain_plan,
    factorization_count,
    factorize,
    factorize_chain,
    plan_count,
    reset_counters,
    scipy_available,
    validate_solver,
)

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="sparse backend requires scipy"
)


def dag_chain(n_transient: int, seed: int = 0) -> DiscreteTimeMarkovChain:
    """A forward-only (DAG) sparse chain: each transient state feeds a few
    later states plus the End/Fail pair."""
    rng = np.random.default_rng(seed)
    states = [f"t{i}" for i in range(n_transient)] + ["End", "Fail"]
    n = len(states)
    matrix = np.zeros((n, n))
    for i in range(n_transient):
        successors = rng.choice(
            np.arange(i + 1, n_transient), size=min(3, n_transient - i - 1),
            replace=False,
        ) if i + 1 < n_transient else np.array([], dtype=int)
        weights = rng.uniform(0.1, 1.0, size=successors.size + 2)
        weights /= weights.sum()
        for j, w in zip(successors, weights[:-2]):
            matrix[i, j] = w
        matrix[i, n_transient] = weights[-2]      # End
        matrix[i, n_transient + 1] = weights[-1]  # Fail
    matrix[n_transient, n_transient] = 1.0
    matrix[n_transient + 1, n_transient + 1] = 1.0
    return DiscreteTimeMarkovChain(states, matrix)


def cyclic_chain() -> DiscreteTimeMarkovChain:
    """A small chain with a transient cycle t0 <-> t1 (escape to End)."""
    states = ["t0", "t1", "End", "Fail"]
    matrix = np.array(
        [
            [0.0, 0.6, 0.3, 0.1],
            [0.5, 0.0, 0.4, 0.1],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    return DiscreteTimeMarkovChain(states, matrix)


def absorbing_mask(chain: DiscreteTimeMarkovChain) -> np.ndarray:
    mask = np.zeros(len(chain.states), dtype=bool)
    mask[[chain.index(s) for s in chain.absorbing_states()]] = True
    return mask


class TestValidateSolver:
    def test_accepts_all_known(self):
        for name in SOLVERS:
            if name == "sparse" and not scipy_available():
                continue
            assert validate_solver(name) == name

    def test_normalizes_case(self):
        assert validate_solver("DENSE") == "dense"

    def test_unknown_raises(self):
        with pytest.raises(EvaluationError, match="unknown solver"):
            validate_solver("banded")

    def test_sparse_without_scipy_raises(self, monkeypatch):
        monkeypatch.setattr(solvers, "_HAVE_SCIPY", False)
        with pytest.raises(EvaluationError, match="requires scipy"):
            validate_solver("sparse")

    def test_auto_and_dense_without_scipy_fine(self, monkeypatch):
        monkeypatch.setattr(solvers, "_HAVE_SCIPY", False)
        assert validate_solver("auto") == "auto"
        assert validate_solver("dense") == "dense"


class TestBackendResolution:
    def test_auto_small_stays_dense(self):
        assert solvers._resolve_backend("auto", 10, 20) == "dense"

    def test_explicit_dense(self):
        assert solvers._resolve_backend("dense", 10_000, 10) == "dense"

    @needs_scipy
    def test_auto_large_sparse_goes_sparse(self):
        m = solvers.SPARSE_THRESHOLD
        assert solvers._resolve_backend("auto", m, 3 * m) == "sparse"

    @needs_scipy
    def test_auto_large_dense_fill_stays_dense(self):
        m = solvers.SPARSE_THRESHOLD
        nnz = int(0.5 * m * m)  # above SPARSE_DENSITY
        assert solvers._resolve_backend("auto", m, nnz) == "dense"

    def test_auto_without_scipy_stays_dense(self, monkeypatch):
        monkeypatch.setattr(solvers, "_HAVE_SCIPY", False)
        m = solvers.SPARSE_THRESHOLD
        assert solvers._resolve_backend("auto", m, 3 * m) == "dense"

    @needs_scipy
    def test_dag_refines_to_triangular(self):
        chain = dag_chain(20)
        plan = chain_plan(
            chain.matrix, absorbing_mask(chain), solver="sparse", cache=False
        )
        assert plan.backend == "sparse-tri"
        assert plan.order is not None

    @needs_scipy
    def test_cycle_refines_to_lu(self):
        chain = cyclic_chain()
        plan = chain_plan(
            chain.matrix, absorbing_mask(chain), solver="sparse", cache=False
        )
        assert plan.backend == "sparse-lu"
        assert plan.order is None


class TestFingerprint:
    def test_value_independent(self):
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        other = chain.matrix.copy()
        # rescale the transient rows without changing the pattern
        other[0] = [0.0, 0.5, 0.25, 0.25]
        other[1] = [0.7, 0.0, 0.2, 0.1]
        assert chain_fingerprint(chain.matrix, mask) == chain_fingerprint(
            other, mask
        )

    def test_pattern_sensitive(self):
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        other = chain.matrix.copy()
        other[0, 1] = 0.0
        other[0, 2] = 0.9
        assert chain_fingerprint(chain.matrix, mask) != chain_fingerprint(
            other, mask
        )

    def test_mask_sensitive(self):
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        flipped = mask.copy()
        flipped[0] = True
        assert chain_fingerprint(chain.matrix, mask) != chain_fingerprint(
            chain.matrix, flipped
        )


class TestTopologicalOrder:
    def test_dag_order_respects_edges(self):
        rows = np.array([0, 0, 1, 2])
        cols = np.array([1, 2, 3, 3])
        order = solvers._topological_order(4, rows, cols)
        position = {int(node): i for i, node in enumerate(order)}
        for r, c in zip(rows, cols):
            assert position[int(r)] < position[int(c)]

    def test_cycle_returns_none(self):
        rows = np.array([0, 1])
        cols = np.array([1, 0])
        assert solvers._topological_order(2, rows, cols) is None

    def test_self_loops_do_not_count_as_cycles(self):
        rows = np.array([0, 0, 1])
        cols = np.array([0, 1, 1])
        order = solvers._topological_order(2, rows, cols)
        assert order is not None
        assert set(map(int, order)) == {0, 1}

    def test_no_edges(self):
        order = solvers._topological_order(3, np.array([], dtype=int),
                                           np.array([], dtype=int))
        assert list(order) == [0, 1, 2]


class TestPlanCache:
    def test_structural_hit_skips_rebuild(self):
        cache = LRUCache(max_size=8)
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        reset_counters()
        first = chain_plan(chain.matrix, mask, solver="dense", cache=cache)
        assert plan_count() == 1
        rescaled = chain.matrix.copy()
        rescaled[0] = [0.0, 0.5, 0.25, 0.25]
        second = chain_plan(rescaled, mask, solver="dense", cache=cache)
        assert second is first           # same structure -> same plan object
        assert plan_count() == 1         # nothing was rebuilt
        assert cache.stats.hits >= 1

    def test_cache_false_disables(self):
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        reset_counters()
        chain_plan(chain.matrix, mask, solver="dense", cache=False)
        chain_plan(chain.matrix, mask, solver="dense", cache=False)
        assert plan_count() == 2

    def test_solver_request_is_part_of_the_key(self):
        if not scipy_available():
            pytest.skip("needs both backends")
        cache = LRUCache(max_size=8)
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        dense = chain_plan(chain.matrix, mask, solver="dense", cache=cache)
        sparse = chain_plan(chain.matrix, mask, solver="sparse", cache=cache)
        assert dense.backend == "dense"
        assert sparse.backend == "sparse-lu"


class TestFactorizationCounters:
    @needs_scipy
    def test_triangular_path_never_factors(self):
        chain = dag_chain(30)
        mask = absorbing_mask(chain)
        plan = chain_plan(chain.matrix, mask, solver="sparse", cache=False)
        assert plan.backend == "sparse-tri"
        reset_counters()
        fact = factorize_chain(chain.matrix, plan)
        fact.solve(np.ones(plan.transient.size))
        fact.solve(np.zeros(plan.transient.size))
        assert factorization_count() == 0

    @needs_scipy
    def test_sparse_lu_factors_once(self):
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        plan = chain_plan(chain.matrix, mask, solver="sparse", cache=False)
        reset_counters()
        fact = factorize_chain(chain.matrix, plan)
        fact.solve(np.ones(2))
        fact.solve(np.ones(2))
        assert factorization_count() == 1

    @needs_scipy
    def test_dense_with_scipy_factors_once_and_reuses(self):
        chain = cyclic_chain()
        mask = absorbing_mask(chain)
        plan = chain_plan(chain.matrix, mask, solver="dense", cache=False)
        reset_counters()
        fact = factorize_chain(chain.matrix, plan)
        assert fact.reusable
        fact.solve(np.ones(2))
        fact.solve(np.ones(2))
        assert factorization_count() == 1


class TestFactorizationCorrectness:
    def reference(self, chain):
        mask = absorbing_mask(chain)
        transient = np.flatnonzero(~mask)
        q = chain.matrix[np.ix_(transient, transient)]
        return np.eye(transient.size) - q

    def check(self, fact, system):
        rng = np.random.default_rng(7)
        rhs = rng.standard_normal(system.shape[0])
        np.testing.assert_allclose(
            fact.solve(rhs), np.linalg.solve(system, rhs), atol=1e-10
        )
        np.testing.assert_allclose(
            fact.solve_transpose(rhs), np.linalg.solve(system.T, rhs),
            atol=1e-10,
        )
        np.testing.assert_allclose(fact.matvec(rhs), system @ rhs, atol=1e-12)
        assert fact.norm1() == pytest.approx(
            np.abs(system).sum(axis=0).max(), abs=1e-12
        )
        exact = np.linalg.cond(system, 1)
        estimate = fact.condition_estimate()
        assert exact / 10.0 <= estimate <= exact * 10.0

    def test_dense(self):
        chain = cyclic_chain()
        plan = chain_plan(chain.matrix, absorbing_mask(chain),
                          solver="dense", cache=False)
        self.check(factorize_chain(chain.matrix, plan), self.reference(chain))

    @needs_scipy
    def test_sparse_lu(self):
        chain = cyclic_chain()
        plan = chain_plan(chain.matrix, absorbing_mask(chain),
                          solver="sparse", cache=False)
        fact = factorize_chain(chain.matrix, plan)
        assert fact.method == "sparse-lu"
        self.check(fact, self.reference(chain))

    @needs_scipy
    def test_sparse_triangular(self):
        chain = dag_chain(25, seed=3)
        plan = chain_plan(chain.matrix, absorbing_mask(chain),
                          solver="sparse", cache=False)
        fact = factorize_chain(chain.matrix, plan)
        assert fact.method == "sparse-tri"
        self.check(fact, self.reference(chain))

    def test_large_dense_uses_estimate_not_exact(self):
        # n > EXACT_COND_SIZE takes the estimator path; on a diagonally
        # dominant system the 1-norm estimate is within a small factor.
        n = solvers.EXACT_COND_SIZE + 8
        rng = np.random.default_rng(11)
        a = np.eye(n) + rng.uniform(0.0, 0.4 / n, size=(n, n))
        fact = solvers._DenseFactorization(a)
        exact = np.linalg.cond(a, 1)
        assert exact / 10.0 <= fact.condition_estimate() <= exact * 10.0

    def test_hager_estimator_matches_exact_on_small_system(self):
        a = np.array([[2.0, -1.0, 0.0], [0.5, 3.0, -0.5], [0.0, -1.0, 4.0]])

        def solve(rhs):
            return np.linalg.solve(a, rhs)

        def solve_t(rhs):
            return np.linalg.solve(a.T, rhs)

        estimate = solvers._hager_inverse_norm(solve, solve_t, 3)
        exact = np.abs(np.linalg.inv(a)).sum(axis=0).max()
        assert estimate == pytest.approx(exact, rel=0.5)


class TestSingularSystems:
    def trapped(self) -> DiscreteTimeMarkovChain:
        """t0 <-> t1 trap: (I - Q) is exactly singular."""
        states = ["t0", "t1", "End"]
        matrix = np.array(
            [[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
        )
        return DiscreteTimeMarkovChain(states, matrix)

    def test_dense_raises_singular(self):
        chain = self.trapped()
        plan = chain_plan(chain.matrix, absorbing_mask(chain),
                          solver="dense", cache=False)
        with pytest.raises(SingularSystemError):
            fact = factorize_chain(chain.matrix, plan)
            fact.solve(np.ones(2))  # scipy-less dense defers to solve time

    @needs_scipy
    def test_sparse_raises_singular(self):
        chain = self.trapped()
        plan = chain_plan(chain.matrix, absorbing_mask(chain),
                          solver="sparse", cache=False)
        with pytest.raises(SingularSystemError):
            factorize_chain(chain.matrix, plan)

    def test_analysis_maps_to_not_absorbing(self):
        for solver in ("dense",) + (("sparse",) if scipy_available() else ()):
            with pytest.raises(NotAbsorbingError):
                AbsorbingChainAnalysis(self.trapped(), solver=solver)


class TestFactorizeGeneric:
    def test_rejects_non_square(self):
        with pytest.raises(EvaluationError, match="square"):
            factorize(np.zeros((2, 3)))

    def test_dense_solve(self):
        a = np.array([[4.0, 1.0], [1.0, 3.0]])
        fact = factorize(a, solver="dense")
        np.testing.assert_allclose(
            fact.solve(np.array([1.0, 2.0])),
            np.linalg.solve(a, [1.0, 2.0]),
        )

    @needs_scipy
    def test_sparse_solve(self):
        a = np.array([[4.0, 1.0], [1.0, 3.0]])
        fact = factorize(a, solver="sparse")
        assert fact.method == "sparse-lu"
        np.testing.assert_allclose(
            fact.solve(np.array([1.0, 2.0])),
            np.linalg.solve(a, [1.0, 2.0]),
        )

    def test_singular_raises(self):
        with pytest.raises(SingularSystemError):
            factorize(np.zeros((2, 2)), solver="dense").solve(np.ones(2))


class TestAnalysisBackends:
    def test_small_auto_is_dense(self):
        analysis = AbsorbingChainAnalysis(cyclic_chain())
        assert analysis.solver_backend == "dense"

    @needs_scipy
    def test_forced_sparse_matches_dense(self):
        chain = dag_chain(40, seed=5)
        dense = AbsorbingChainAnalysis(chain, solver="dense")
        sparse = AbsorbingChainAnalysis(chain, solver="sparse")
        assert sparse.solver_backend == "sparse-tri"
        for state in dense.transient_states:
            assert sparse.absorption_probability(
                state, "End"
            ) == pytest.approx(
                dense.absorption_probability(state, "End"), abs=1e-12
            )
            assert sparse.expected_steps_to_absorption(
                state
            ) == pytest.approx(
                dense.expected_steps_to_absorption(state), rel=1e-10
            )
        assert sparse.expected_visits("t0", "t1") == pytest.approx(
            dense.expected_visits("t0", "t1"), abs=1e-12
        )

    @needs_scipy
    def test_cyclic_forced_sparse_uses_lu(self):
        analysis = AbsorbingChainAnalysis(cyclic_chain(), solver="sparse")
        assert analysis.solver_backend == "sparse-lu"

    def test_fingerprint_stable_across_values(self):
        chain = cyclic_chain()
        rescaled = chain.matrix.copy()
        rescaled[0] = [0.0, 0.5, 0.25, 0.25]
        a = AbsorbingChainAnalysis(chain)
        b = AbsorbingChainAnalysis(
            DiscreteTimeMarkovChain(chain.states, rescaled)
        )
        assert a.structural_fingerprint == b.structural_fingerprint

    def test_no_transient_states(self):
        chain = DiscreteTimeMarkovChain(["a"], np.array([[1.0]]))
        analysis = AbsorbingChainAnalysis(chain)
        assert analysis.solver_backend == "dense"
        assert analysis.structural_fingerprint is None
        assert analysis.absorption_probability("a", "a") == 1.0
