"""Unit tests for the numerical guards (:mod:`repro.runtime.guards`) and
the hardened absorbing-chain solve that uses them.

The failure mode under attack: floating-point garbage (NaN attributes,
ill-conditioned ``I - Q`` systems) flowing through unguarded arithmetic
into a *plausible-looking wrong probability*.  Every guard must convert
that into a typed error instead.
"""

import numpy as np
import pytest

from repro.errors import NumericalInstabilityError, ProbabilityRangeError
from repro.markov import AbsorbingChainAnalysis, ChainBuilder
from repro.runtime.guards import (
    CLAMP_TOL,
    check_finite,
    check_finite_array,
    check_probability,
    check_unit_interval_array,
    solve_guarded,
)


class TestScalarGuards:
    def test_finite_passthrough(self):
        assert check_finite("x", 0.25) == 0.25

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_raises(self, bad):
        with pytest.raises(NumericalInstabilityError):
            check_finite("x", bad)

    def test_probability_in_range(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        assert check_probability("p", 0.5) == 0.5

    def test_probability_roundoff_is_clamped(self):
        assert check_probability("p", -CLAMP_TOL / 2) == 0.0
        assert check_probability("p", 1.0 + CLAMP_TOL / 2) == 1.0

    def test_probability_gross_violation_raises(self):
        with pytest.raises(ProbabilityRangeError):
            check_probability("p", 1.5)
        with pytest.raises(ProbabilityRangeError):
            check_probability("p", -0.2)

    def test_probability_nan_raises_instability(self):
        with pytest.raises(NumericalInstabilityError):
            check_probability("p", float("nan"))

    def test_error_message_names_the_quantity(self):
        with pytest.raises(ProbabilityRangeError, match="Pfail"):
            check_probability("Pfail(search)", 2.0)


class TestArrayGuards:
    def test_finite_array(self):
        array = np.array([0.1, 0.9])
        assert check_finite_array("a", array) is array

    def test_nan_entry_raises_with_count(self):
        with pytest.raises(NumericalInstabilityError, match="2"):
            check_finite_array("a", np.array([0.1, np.nan, np.inf]))

    def test_unit_interval_clamps_roundoff(self):
        out = check_unit_interval_array(
            "b", np.array([-1e-12, 0.5, 1.0 + 1e-12])
        )
        assert out[0] == 0.0 and out[2] == 1.0

    def test_unit_interval_rejects_gross_escape(self):
        with pytest.raises(ProbabilityRangeError):
            check_unit_interval_array("b", np.array([0.5, 1.7]))


class TestSolveGuarded:
    def test_well_posed_matches_numpy(self):
        system = np.array([[2.0, 1.0], [1.0, 3.0]])
        rhs = np.array([1.0, 2.0])
        assert solve_guarded(system, rhs) == pytest.approx(
            np.linalg.solve(system, rhs)
        )

    def test_singular_system_raises(self):
        system = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(NumericalInstabilityError):
            solve_guarded(system, np.array([1.0, 1.0]))

    def test_ill_conditioned_system_raises(self):
        eps = 1e-15
        system = np.array([[1.0, 1.0], [1.0, 1.0 + eps]])
        with pytest.raises(NumericalInstabilityError) as excinfo:
            solve_guarded(system, np.array([1.0, 1.0]), "probe")
        assert "probe" in str(excinfo.value)

    def test_non_finite_inputs_raise(self):
        with pytest.raises(NumericalInstabilityError):
            solve_guarded(np.array([[np.nan]]), np.array([1.0]))
        with pytest.raises(NumericalInstabilityError):
            solve_guarded(np.array([[1.0]]), np.array([np.inf]))


class TestHardenedAbsorbingChain:
    def fail_end_chain(self, f: float):
        return (
            ChainBuilder()
            .add_edge("Start", "work", 1.0)
            .add_edge("work", "End", 1.0 - f)
            .add_edge("work", "Fail", f)
            .build()
        )

    def test_healthy_chain_reports_zero_drift(self):
        analysis = AbsorbingChainAnalysis(self.fail_end_chain(0.25))
        assert analysis.clamp_drift <= CLAMP_TOL
        assert analysis.absorption_probability("Start", "Fail") == pytest.approx(0.25)

    def test_near_singular_ping_pong_cycle_raises(self):
        """A two-state cycle leaking only 1e-13 of its mass per lap keeps
        both states transient (no self-loop, so the absorbing-state
        tolerance cannot reclassify them) while pushing the (I - Q)
        condition number past the 1e12 trust threshold — the
        fundamental-matrix solve must refuse rather than emit an
        absorption split it cannot vouch for."""
        eps = 1e-13
        chain = (
            ChainBuilder()
            .add_edge("Start", "w1", 1.0)
            .add_edge("w1", "w2", 1.0 - eps)
            .add_edge("w1", "Fail", eps)
            .add_edge("w2", "w1", 1.0 - eps)
            .add_edge("w2", "End", eps)
            .build()
        )
        with pytest.raises(NumericalInstabilityError):
            AbsorbingChainAnalysis(chain)

    def test_long_retry_chain_is_still_trusted(self):
        """A 0.999 retry loop is ill-conditioned-ish but well within the
        trust envelope — the guard must not reject workable models."""
        r = 0.999
        chain = (
            ChainBuilder()
            .add_edge("Start", "work", 1.0)
            .add_edge("work", "work", r)
            .add_edge("work", "End", (1 - r) * 0.9)
            .add_edge("work", "Fail", (1 - r) * 0.1)
            .build()
        )
        analysis = AbsorbingChainAnalysis(chain)
        assert analysis.absorption_probability("Start", "Fail") == pytest.approx(0.1)
