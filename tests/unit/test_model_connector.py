"""Unit tests for connector kinds (Figure 2 and the loc* artifacts)."""

import pytest

from repro.errors import ModelError
from repro.model import (
    AND,
    CustomConnector,
    FlowBuilder,
    LocalCallConnector,
    RemoteCallConnector,
    ServiceRequest,
    perfect_connector,
)
from repro.symbolic import Constant


class TestPerfectConnector:
    def test_never_fails(self):
        loc = perfect_connector("loc1")
        assert loc.pfail() == 0.0

    def test_flagged_as_connector(self):
        assert perfect_connector("loc1").is_connector

    def test_is_simple(self):
        assert perfect_connector("loc1").is_simple

    def test_has_no_formals(self):
        assert perfect_connector("loc1").formal_parameters == ()


class TestLocalCallConnector:
    def test_flow_shape_matches_figure_2(self):
        lpc = LocalCallConnector("lpc", operations=100.0).service()
        assert lpc.is_connector and not lpc.is_simple
        assert [s.name for s in lpc.flow.states] == ["transfer"]
        state = lpc.flow.state("transfer")
        assert len(state.requests) == 1
        assert state.requests[0].target == LocalCallConnector.CPU_SLOT

    def test_workload_is_constant_l(self):
        """The shared-memory assumption: cost independent of ip/op."""
        lpc = LocalCallConnector("lpc", operations=42.0).service()
        request = lpc.flow.state("transfer").requests[0]
        assert request.actuals["N"] == Constant(42.0)

    def test_transport_interface(self):
        lpc = LocalCallConnector("lpc", operations=1.0).service()
        assert lpc.formal_parameters == ("ip", "op")

    def test_zero_software_failure_by_default(self):
        lpc = LocalCallConnector("lpc", operations=10.0).service()
        request = lpc.flow.state("transfer").requests[0]
        assert request.internal_failure == Constant(0.0)

    def test_nonzero_software_failure_rate(self):
        lpc = LocalCallConnector("lpc", operations=10.0, software_failure_rate=1e-6)
        request = lpc.service().flow.state("transfer").requests[0]
        assert request.internal_failure.evaluate({}) == pytest.approx(
            1 - (1 - 1e-6) ** 10
        )

    def test_negative_operations_rejected(self):
        with pytest.raises(ModelError):
            LocalCallConnector("lpc", operations=-1.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ModelError):
            LocalCallConnector("lpc", operations=1.0, software_failure_rate=2.0)


class TestRemoteCallConnector:
    def make(self):
        return RemoteCallConnector("rpc", marshal_cost=10.0, transmit_cost=2.0).service()

    def test_two_transfer_stages(self):
        rpc = self.make()
        assert [s.name for s in rpc.flow.states] == ["transfer_ip", "transfer_op"]

    def test_each_stage_is_and_of_three(self):
        rpc = self.make()
        for name in ("transfer_ip", "transfer_op"):
            state = rpc.flow.state(name)
            assert state.completion == AND
            assert len(state.requests) == 3

    def test_stage_targets_marshal_transmit_unmarshal(self):
        rpc = self.make()
        ip_targets = [r.target for r in rpc.flow.state("transfer_ip").requests]
        assert ip_targets == ["client_cpu", "net", "server_cpu"]
        op_targets = [r.target for r in rpc.flow.state("transfer_op").requests]
        assert op_targets == ["server_cpu", "net", "client_cpu"]

    def test_costs_linear_in_sizes(self):
        rpc = self.make()
        marshal = rpc.flow.state("transfer_ip").requests[0]
        assert marshal.actuals["N"].evaluate({"ip": 7.0, "op": 0.0}) == 70.0
        transmit = rpc.flow.state("transfer_ip").requests[1]
        assert transmit.actuals["B"].evaluate({"ip": 7.0, "op": 0.0}) == 14.0

    def test_requirement_slots(self):
        rpc = self.make()
        assert rpc.requirements() == {"client_cpu", "net", "server_cpu"}

    def test_negative_costs_rejected(self):
        with pytest.raises(ModelError):
            RemoteCallConnector("rpc", marshal_cost=-1.0, transmit_cost=1.0)


class TestCustomConnector:
    def test_wraps_flow_as_connector(self):
        flow = (
            FlowBuilder(formals=("ip", "op"))
            .state("hop", [ServiceRequest("relay", actuals={"B": "ip"})])
            .sequence("hop")
            .build()
        )
        connector = CustomConnector("bus", flow).service()
        assert connector.is_connector
        assert connector.formal_parameters == ("ip", "op")
        assert connector.requirements() == {"relay"}
