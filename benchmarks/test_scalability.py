"""PERF — scalability of the evaluation procedure.

The paper requires prediction "automatic and efficient ... to remain
compliant with the SOC requirement" (section 1).  This benchmark measures
how ``Pfail_Alg`` scales along the two structural axes:

- **depth**: a linear chain of composite services (each requiring the
  next), depth 1..64 — the recursion-level axis of section 4;
- **width**: one composite whose flow has many states with many requests —
  the per-flow Markov-solve axis;
- **flow size**: single absorbing solves on synthetic sparse flows up to
  10^4 states through the pluggable solver backends, with peak-RSS
  tracking (the production-scale axis the sparse backend exists for).

Both the numeric and symbolic back-ends are timed (the numeric-vs-symbolic
ablation of DESIGN.md §5).
"""

import resource
import time

import pytest

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator, SymbolicEvaluator
from repro.model import (
    AnalyticInterface,
    Assembly,
    CompositeService,
    FlowBuilder,
    ServiceRequest,
    SimpleService,
)
from repro.model.parameters import FormalParameter
from repro.symbolic import Constant, Parameter

from _report import emit


def interface():
    return AnalyticInterface(formal_parameters=(FormalParameter("n"),))


def chain_assembly(depth: int) -> Assembly:
    """s0 -> s1 -> ... -> s_depth (simple base), each hop halving n."""
    assembly = Assembly(f"chain-{depth}")
    assembly.add_service(
        SimpleService(
            f"s{depth}", interface(),
            Constant(1.0) - (Constant(1.0) - Constant(1e-6)) ** Parameter("n"),
        )
    )
    for i in range(depth - 1, -1, -1):
        flow = (
            FlowBuilder(formals=("n",))
            .state(
                "call",
                [
                    ServiceRequest(
                        "next",
                        actuals={"n": Parameter("n") * 0.5},
                        internal_failure=Constant(1e-7),
                    )
                ],
            )
            .sequence("call")
            .build()
        )
        assembly.add_service(CompositeService(f"s{i}", interface(), flow))
        assembly.bind(f"s{i}", "next", f"s{i + 1}")
    return assembly


def wide_assembly(states: int, requests_per_state: int) -> Assembly:
    """One composite with `states` sequential states of
    `requests_per_state` requests each, all to distinct providers."""
    assembly = Assembly(f"wide-{states}x{requests_per_state}")
    builder = FlowBuilder(formals=("n",))
    names = []
    for s in range(states):
        requests = []
        for r in range(requests_per_state):
            provider = f"p{s}_{r}"
            assembly.add_service(
                SimpleService(
                    provider, interface(),
                    Constant(1.0)
                    - (Constant(1.0) - Constant(1e-7)) ** Parameter("n"),
                )
            )
            requests.append(
                ServiceRequest(provider, actuals={"n": Parameter("n")})
            )
        name = f"st{s}"
        names.append(name)
        builder.state(name, requests)
    builder.sequence(*names)
    app = CompositeService("app", interface(), builder.build())
    assembly.add_service(app)
    for s in range(states):
        for r in range(requests_per_state):
            assembly.bind("app", f"p{s}_{r}", f"p{s}_{r}")
    return assembly


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_depth_scaling(benchmark):
    benchmark(lambda: ReliabilityEvaluator(chain_assembly(32)).pfail("s0", n=1e6))

    rows = []
    for depth in (1, 4, 16, 64):
        assembly = chain_assembly(depth)
        numeric = _time(
            lambda a=assembly: ReliabilityEvaluator(a).pfail("s0", n=1e6)
        )
        symbolic = _time(
            lambda a=assembly: SymbolicEvaluator(a)
            .pfail_expression("s0")
            .evaluate({"n": 1e6})
        )
        pfail = ReliabilityEvaluator(assembly).pfail("s0", n=1e6)
        rows.append((depth, pfail, numeric * 1e3, symbolic * 1e3))
    text = (
        "PERF/depth — linear service chains (one solve per level)\n\n"
        + format_table(
            ["depth", "Pfail(s0, 1e6)", "numeric ms", "symbolic ms"],
            rows,
            float_format="{:.4g}",
        )
    )
    emit("PERF_DEPTH", text)
    assert all(0.0 <= row[1] <= 1.0 for row in rows)


def test_width_scaling(benchmark):
    benchmark(
        lambda: ReliabilityEvaluator(wide_assembly(16, 4)).pfail("app", n=1e5)
    )

    rows = []
    for states, requests in ((4, 2), (16, 4), (64, 4), (64, 8)):
        assembly = wide_assembly(states, requests)
        numeric = _time(
            lambda a=assembly: ReliabilityEvaluator(a).pfail("app", n=1e5)
        )
        pfail = ReliabilityEvaluator(assembly).pfail("app", n=1e5)
        rows.append((states, requests, states * requests, pfail, numeric * 1e3))
    text = (
        "PERF/width — single flows with many states and requests\n\n"
        + format_table(
            ["states", "req/state", "total requests", "Pfail(app, 1e5)",
             "numeric ms"],
            rows,
            float_format="{:.4g}",
        )
    )
    emit("PERF_WIDTH", text)
    assert all(0.0 <= row[3] <= 1.0 for row in rows)


def test_flow_size_scaling():
    """Single absorbing solves on 10^3..10^4-state sparse flows, with the
    auto-selected backend and peak RSS per solve."""
    from repro.markov import AbsorbingChainAnalysis, scipy_available

    from test_solver_backend import sparse_flow

    if not scipy_available():
        pytest.skip("large-flow scaling needs the sparse backend (scipy)")

    rows = []
    for states in (1_000, 4_000, 10_000):
        chain = sparse_flow(states)
        start = time.perf_counter()
        analysis = AbsorbingChainAnalysis(chain, solver="auto",
                                          solver_cache=False)
        pfail = analysis.absorption_probability("s0", "Fail")
        elapsed = time.perf_counter() - start
        peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        rows.append(
            (states, analysis.solver_backend, pfail, elapsed * 1e3, peak_mb)
        )
        assert 0.0 <= pfail <= 1.0
    text = (
        "PERF/flow-size — synthetic sparse flows through the auto solver\n"
        "(peak RSS is cumulative for the process, reported at each size)\n\n"
        + format_table(
            ["states", "backend", "Pfail(s0 -> Fail)", "solve ms",
             "peak RSS MB"],
            rows,
            float_format="{:.4g}",
        )
    )
    emit("PERF_FLOWSIZE", text)
    assert all(row[1].startswith("sparse") for row in rows)
