"""QOS — the reliability/performance trade-off (paper §6's "other QoS
aspects ... (e.g. performance)", implemented).

The section 4 comparison gains a second axis: for each Figure 6 gamma, the
local and remote assemblies are scored on *both* predicted reliability and
predicted expected duration from the same model.  The paper's reliability
story (remote wins at low gamma) meets its price tag: the remote assembly
ships the list over the wire and pays ~two orders of magnitude in latency
— the classic Pareto trade-off a broker must weigh.
"""

from repro.analysis import format_table
from repro.core import PerformanceEvaluator, ReliabilityEvaluator
from repro.scenarios import (
    PAPER_GAMMA_VALUES,
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)

from _report import emit

ACTUALS = {"elem": 1, "list": 500, "res": 1}


def run_tradeoff():
    rows = []
    for gamma in PAPER_GAMMA_VALUES:
        params = SearchSortParameters().with_figure6_point(1e-6, gamma)
        local = local_assembly(params)
        remote = remote_assembly(params)
        r_local = ReliabilityEvaluator(local).reliability("search", **ACTUALS)
        r_remote = ReliabilityEvaluator(remote).reliability("search", **ACTUALS)
        t_local = PerformanceEvaluator(local).expected_duration("search", **ACTUALS)
        t_remote = PerformanceEvaluator(remote).expected_duration("search", **ACTUALS)
        winner_r = "remote" if r_remote > r_local else "local"
        winner_t = "remote" if t_remote < t_local else "local"
        rows.append(
            (f"{gamma:g}", r_local, r_remote, t_local, t_remote,
             winner_r, winner_t)
        )
    return rows


def test_qos_tradeoff(benchmark):
    rows = benchmark(run_tradeoff)
    text = (
        "QOS — reliability AND expected duration of the section 4 "
        "assemblies (list=500, phi1=1e-6)\n\n"
        + format_table(
            ["gamma", "R local", "R remote", "E[T] local", "E[T] remote",
             "more reliable", "faster"],
            rows,
            float_format="{:.6g}",
        )
        + "\n\nthe local assembly is always faster (no wire); the remote "
        "one is more reliable\nonly at gamma=5e-3 — a genuine Pareto "
        "choice, readable from ONE model."
    )
    emit("QOS", text)

    for row in rows:
        assert row[6] == "local"  # local always faster
    # the Pareto conflict exists exactly at the smallest gamma
    assert rows[-1][5] == "remote" and rows[0][5] == "local"
