"""GROUPS — ablation of the dependency-partition granularity.

The extended dependency model ("more complex dependencies", paper §6)
interpolates between the paper's two binary cases: with 8 OR-redundant
queries, sweep the partition from 8 singletons (full independence, eq. 7)
through pairs and quads to one shared group of 8 (the paper's sharing
model, eq. 12), and report how unreliability grows with dependency
coarseness.
"""

from repro.analysis import format_table
from repro.core import grouped_state_failure_probability
from repro.model import OR

from _report import emit

#: per-request probabilities (one flaky backend class)
INTERNAL = [0.02] * 8
EXTERNAL = [0.05] * 8

PARTITIONS = [
    ("8 singletons (eq. 7)", [(i,) for i in range(8)]),
    ("4 pairs", [(0, 1), (2, 3), (4, 5), (6, 7)]),
    ("2 quads", [(0, 1, 2, 3), (4, 5, 6, 7)]),
    ("1 group of 8 (eq. 12)", [tuple(range(8))]),
]


def run_sweep():
    rows = []
    for label, groups in PARTITIONS:
        pfail = grouped_state_failure_probability(OR, groups, INTERNAL, EXTERNAL)
        rows.append((label, len(groups), pfail))
    return rows


def test_grouped_sharing_ablation(benchmark):
    rows = benchmark(run_sweep)
    baseline = rows[0][2]
    table = [
        (label, count, pfail, pfail / baseline if baseline > 0 else float("inf"))
        for label, count, pfail in rows
    ]
    text = (
        "GROUPS — OR-redundant state (n=8) under increasingly coarse "
        "dependency partitions\n"
        f"(per-request: Pfail_int={INTERNAL[0]}, Pfail_ext={EXTERNAL[0]})\n\n"
        + format_table(
            ["partition", "groups", "Pfail(state)", "x vs independent"],
            table,
            float_format="{:.6e}",
        )
    )
    emit("GROUPS", text)

    pfails = [pfail for _, _, pfail in rows]
    # coarser partitions are strictly worse under OR
    assert all(b > a for a, b in zip(pfails, pfails[1:]))
