"""BASE — executable version of the section 5 related-work comparison.

Regenerates the predictions of the Cheung-style, path-based [5] and
Wang-style [19] baselines next to the paper's model on (a) the section 4
scenario — where all assumptions overlap, everything must agree — and (b)
the sharing scenarios — where the baselines' hard-wired no-sharing
assumption makes them optimistic, the paper's differentiator.
"""

from repro.analysis import format_table
from repro.baselines import (
    cheung_from_assembly,
    path_based_from_assembly,
    wang_from_assembly,
)
from repro.core import ReliabilityEvaluator
from repro.scenarios import (
    DatabaseParameters,
    booking_assembly,
    local_assembly,
    remote_assembly,
    replicated_assembly,
)

from _report import emit

SHARED_PARAMS = DatabaseParameters(db_failure_rate=1e-3, phi_report=1e-6)

CASES = [
    ("search/local", local_assembly(), "search",
     {"elem": 1, "list": 500, "res": 1}),
    ("search/remote", remote_assembly(), "search",
     {"elem": 1, "list": 500, "res": 1}),
    ("booking", booking_assembly(), "booking", {"itinerary": 5}),
    ("booking+sharedGDS", booking_assembly(shared_gds=True), "booking",
     {"itinerary": 5}),
    ("db/independent", replicated_assembly(3, False, SHARED_PARAMS), "report",
     {"size": 500}),
    ("db/shared", replicated_assembly(3, True, SHARED_PARAMS), "report",
     {"size": 500}),
]


def run_all_models():
    rows = []
    for name, assembly, service, actuals in CASES:
        ours = ReliabilityEvaluator(assembly).pfail(service, **actuals)
        cheung = cheung_from_assembly(assembly, service, **actuals)
        path = path_based_from_assembly(assembly, service, **actuals)
        wang = wang_from_assembly(assembly, service, **actuals)
        rows.append(
            (
                name, ours,
                cheung.system_unreliability(),
                path.system_unreliability(),
                wang.system_unreliability(),
            )
        )
    return rows


def test_baseline_comparison(benchmark):
    rows = benchmark(run_all_models)

    annotated = []
    for name, ours, cheung, path, wang in rows:
        shared_case = "shared" in name or "GDS" in name
        annotated.append(
            (name, ours, cheung, path, wang,
             "optimistic baselines" if shared_case else "all agree")
        )
    text = (
        "BASE — section 5 comparison, executable\n"
        "(unreliability predicted by each model; baselines assume "
        "no-sharing)\n\n"
        + format_table(
            ["scenario", "this paper", "Cheung", "path-based [5]",
             "Wang [19]", "expected"],
            annotated,
            float_format="{:.6e}",
        )
    )
    emit("BASE", text)

    for name, ours, cheung, path, wang, _ in annotated:
        if "shared" in name or "GDS" in name:
            assert cheung < ours and path < ours and wang < ours
        else:
            for baseline in (cheung, path, wang):
                assert abs(baseline - ours) <= 1e-9 * max(ours, 1e-12)
