"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates the rows/series of one paper figure/table (see
the experiments index in DESIGN.md).  :func:`emit` writes each series to
``benchmarks/results/<experiment>.txt`` and queues it for display;
``benchmarks/conftest.py`` prints the queued series in the pytest terminal
summary (after capture is released), so a plain
``pytest benchmarks/ --benchmark-only`` shows the regenerated numbers next
to the timing tables.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: (experiment id, rendered text) in emission order; drained by conftest.
EMITTED: list[tuple[str, str]] = []


def emit(experiment: str, text: str) -> None:
    """Persist one experiment's regenerated series and queue it for the
    terminal summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    EMITTED.append((experiment, text))


def emit_json(experiment: str, payload: dict) -> Path:
    """Persist one experiment's machine-readable record as
    ``benchmarks/results/BENCH_<experiment>.json`` (e.g. the engine
    suite's sequential-vs-parallel and cold-vs-warm-cache timings) and
    queue a short pointer line for the terminal summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    EMITTED.append((experiment, f"wrote {path}"))
    return path
