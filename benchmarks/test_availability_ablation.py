"""AVAIL — ablation of the no-repair assumption at the resource level.

The paper assumes "no repair occurs".  The availability extension models a
repairable node (failure/repair rates lambda/mu) whose steady-state
unavailability stands in front of the execution-time failure of eq. (1).
This ablation sweeps cpu1's availability in the local search/sort assembly
and reports where node downtime starts to dominate the software failure
rates the paper's analysis is about.
"""

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator
from repro.model import Assembly
from repro.reliability import with_availability
from repro.scenarios import local_assembly

from _report import emit

AVAILABILITIES = (1.0, 0.99999, 0.9999, 0.999, 0.99)
ACTUALS = {"elem": 1, "list": 500, "res": 1}


def build(availability: float) -> Assembly:
    base = local_assembly()
    assembly = Assembly(f"local-avail-{availability:g}")
    for service in base.services:
        if service.name == "cpu1" and availability < 1.0:
            assembly.add_service(with_availability(service, availability, name="cpu1"))
        else:
            assembly.add_service(service)
    for binding in base.bindings:
        assembly.bind(
            binding.consumer, binding.slot, binding.provider,
            connector=binding.connector,
            connector_actuals=dict(binding.connector_actuals),
        )
    return assembly


def run_sweep():
    rows = []
    for availability in AVAILABILITIES:
        pfail = ReliabilityEvaluator(build(availability)).pfail("search", **ACTUALS)
        rows.append((availability, pfail))
    return rows


def test_availability_ablation(benchmark):
    rows = benchmark(run_sweep)
    baseline = rows[0][1]
    table = [
        (f"{a:.5f}", pfail, pfail / baseline)
        for a, pfail in rows
    ]
    text = (
        "AVAIL — releasing no-repair: cpu1 steady-state availability in "
        "the local assembly (list=500)\n"
        "(availability 1.0 = the paper's model; lower = repairable node "
        "with downtime)\n\n"
        + format_table(
            ["cpu1 availability", "Pfail(search)", "x vs paper model"],
            table,
            float_format="{:.6e}",
        )
    )
    emit("AVAIL", text)

    pfails = [pfail for _, pfail in rows]
    assert pfails == sorted(pfails)  # less availability, more unreliability
    # at three nines, downtime dwarfs the ~4e-3 software unreliability
    assert rows[-1][1] > 2 * baseline
