"""MC — Monte Carlo cross-validation of the analytic predictions.

Regenerates the analytic-vs-simulated table over the repository's
scenarios (failure rates inflated so failures are observable with modest
trial budgets) and benchmarks simulator throughput — the cost of the
brute-force alternative the analytic method replaces.
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator
from repro.scenarios import (
    DatabaseParameters,
    SearchSortParameters,
    local_assembly,
    remote_assembly,
    replicated_assembly,
)
from repro.simulation import MonteCarloSimulator

from _report import emit

TRIALS = 20_000

CASES = [
    (
        "search/local",
        local_assembly(replace(SearchSortParameters(), phi_sort1=1e-4,
                               phi_search=1e-4)),
        "search", {"elem": 1, "list": 200, "res": 1},
    ),
    (
        "search/remote",
        remote_assembly(replace(SearchSortParameters(), phi_sort2=1e-5,
                                phi_search=1e-4, gamma=0.2)),
        "search", {"elem": 1, "list": 200, "res": 1},
    ),
    (
        "db/shared",
        replicated_assembly(
            3, True, DatabaseParameters(db_failure_rate=5e-3, phi_report=1e-5)
        ),
        "report", {"size": 300},
    ),
    (
        "db/independent",
        replicated_assembly(
            3, False, DatabaseParameters(db_failure_rate=5e-3, phi_report=1e-4)
        ),
        "report", {"size": 300},
    ),
]


def test_monte_carlo_validation(benchmark):
    def simulate_all():
        rows = []
        for name, assembly, service, actuals in CASES:
            analytic = ReliabilityEvaluator(assembly).pfail(service, **actuals)
            simulator = MonteCarloSimulator(assembly, seed=2026)
            result = simulator.estimate_pfail(service, TRIALS, **actuals)
            rows.append((name, analytic, result))
        return rows

    rows = benchmark.pedantic(simulate_all, rounds=2, iterations=1)

    table_rows = []
    all_consistent = True
    for name, analytic, result in rows:
        consistent = result.consistent_with(analytic)
        all_consistent &= consistent
        table_rows.append(
            (
                name, analytic, result.pfail, result.standard_error,
                "yes" if consistent else "NO",
            )
        )
    text = (
        f"MC — analytic vs Monte Carlo ({TRIALS} trials per scenario, "
        "inflated failure rates)\n\n"
        + format_table(
            ["scenario", "analytic Pfail", "simulated Pfail", "std err",
             "consistent(4 sigma)"],
            table_rows,
            float_format="{:.6e}",
        )
    )
    emit("MC", text)
    assert all_consistent
