"""FIG2 — the LPC and RPC connector flows (Figure 2).

Regenerates the connector flow renderings and the eq. (19)/(20) closed
forms at representative transported sizes; benchmarks the evaluation of
``Pfail(rpc, ip, op)`` — the per-binding cost a broker pays when scoring a
remote alternative.
"""

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator
from repro.scenarios import SearchSortParameters, remote_assembly, local_assembly
from repro.scenarios.search_sort_closed_forms import pfail_lpc, pfail_rpc

from _report import emit


def test_figure2_connectors(benchmark):
    params = SearchSortParameters()
    remote = remote_assembly(params)
    local = local_assembly(params)
    evaluator = ReliabilityEvaluator(remote)
    lpc_evaluator = ReliabilityEvaluator(local)

    sizes = [(1, 1), (11, 1), (101, 1), (501, 1), (1001, 1)]

    def evaluate_connectors():
        rows = []
        for ip, op in sizes:
            rows.append(
                (
                    ip, op,
                    lpc_evaluator.pfail("lpc", ip=ip, op=op),
                    evaluator.pfail("rpc", ip=ip, op=op),
                )
            )
        return rows

    rows = benchmark(evaluate_connectors)

    lpc_service = local.service("lpc")
    rpc_service = remote.service("rpc")
    table_rows = [
        (ip, op, plpc, float(pfail_lpc(params)), prpc, float(pfail_rpc(ip, op, params)))
        for (ip, op, plpc, prpc) in rows
    ]
    text = (
        "Figure 2 — flows of the LPC and RPC connectors\n\n"
        f"lpc(in:ip, out:op):\n{lpc_service.flow.describe()}\n\n"
        f"rpc(in:ip, out:op):\n{rpc_service.flow.describe()}\n\n"
        + format_table(
            ["ip", "op", "Pfail(lpc)", "eq.19", "Pfail(rpc)", "eq.20"],
            table_rows,
            float_format="{:.6e}",
        )
    )
    emit("FIG2", text)

    for ip, op, plpc, prpc in rows:
        assert plpc == float(pfail_lpc(params))
        assert abs(prpc - float(pfail_rpc(ip, op, params))) < 1e-12
