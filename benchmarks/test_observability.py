"""OBS — cost of the observability layer on the Figure 6 workload.

The instrumentation contract is "free until you turn it on": every
``obs.count``/``obs.span`` call site short-circuits on one module-global
flag while observability is disabled (the default).  This benchmark prices
that promise on the paper's headline workload — a Figure 6 sweep of the
local and remote assemblies over the ``list`` grid via the numeric
evaluator, the path with the densest instrumentation (solver, cache and
evaluator call sites all fire on every point).

Three variants of the identical sweep are timed, interleaved round-robin
so drift hits all of them equally, best-of-N so scheduler noise drops out:

- ``stubbed`` — the facade helpers are replaced with bare no-ops: the
  cheapest conceivable call site, standing in for uninstrumented code;
- ``disabled`` — the real facade with observability off (the shipped
  default; one branch per call site);
- ``enabled`` — full collection: registry, tracer and an in-memory sink.

``BENCH_observability.json`` records all three and the derived overheads;
the test asserts the acceptance bound: disabled-mode overhead <= 2 %.
"""

import time

import numpy as np

from repro import observability as obs
from repro.core import ReliabilityEvaluator
from repro.observability import InMemorySink
from repro.observability.tracing import NO_SPAN
from repro.scenarios import (
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)

from _report import emit_json

#: Figure 6 x-axis (trimmed: long enough to dominate fixed costs, short
#: enough that best-of-N repeats stay cheap) and fixed actuals.
GRID = np.unique(np.rint(np.linspace(1.0, 1000.0, 40)))  # integer domain
FIXED = {"elem": 1.0, "res": 1.0}
REPEATS = 7
OVERHEAD_BOUND_PCT = 2.0


def _sweep() -> float:
    """One Figure 6 pass: both assemblies, numeric evaluation per point."""
    params = SearchSortParameters().with_figure6_point(1e-6, 5e-3)
    total = 0.0
    for assembly in (local_assembly(params), remote_assembly(params)):
        evaluator = ReliabilityEvaluator(assembly)
        for value in GRID:
            total += evaluator.pfail("search", list=float(value), **FIXED)
    return total


class _FacadeStub:
    """Swap the facade helpers for bare no-ops and restore on exit."""

    NAMES = ("count", "gauge", "observe", "span")

    def __enter__(self):
        self.saved = {name: getattr(obs, name) for name in self.NAMES}
        for name in ("count", "gauge", "observe"):
            setattr(obs, name, lambda *args, **kwargs: None)
        obs.span = lambda *args, **kwargs: NO_SPAN
        return self

    def __exit__(self, *exc_info):
        for name, fn in self.saved.items():
            setattr(obs, name, fn)
        return False


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure():
    obs.reset()
    _sweep()  # warm caches/allocators once outside the timed region

    timings = {"stubbed": float("inf"), "disabled": float("inf"),
               "enabled": float("inf")}
    for _ in range(REPEATS):  # interleaved: one round of each per pass
        with _FacadeStub():
            timings["stubbed"] = min(timings["stubbed"], _best_of(_sweep, 1))
        obs.reset()
        timings["disabled"] = min(timings["disabled"], _best_of(_sweep, 1))
        obs.reset()
        obs.enable(hooks=[InMemorySink()])
        try:
            timings["enabled"] = min(timings["enabled"], _best_of(_sweep, 1))
        finally:
            obs.reset()
    return timings


def test_observability_overhead():
    timings = _measure()

    overhead_disabled_pct = 100.0 * (
        timings["disabled"] / timings["stubbed"] - 1.0
    )
    overhead_enabled_pct = 100.0 * (
        timings["enabled"] / timings["stubbed"] - 1.0
    )

    # prove the enabled run actually collected on this exact workload
    obs.reset()
    obs.enable()
    try:
        _sweep()
        counters = obs.registry().snapshot()["counters"]
    finally:
        obs.reset()
    assert counters.get("solver.backend.dense", 0) > 0  # solves instrumented

    emit_json("observability", {
        "workload": {
            "figure": "fig6",
            "assemblies": ["local", "remote"],
            "points_per_assembly": int(GRID.size),
            "evaluator": "numeric",
            "repeats": REPEATS,
            "timing": "best-of-N, interleaved",
        },
        "seconds": {k: round(v, 6) for k, v in timings.items()},
        "overhead_pct": {
            "disabled": round(overhead_disabled_pct, 3),
            "enabled": round(overhead_enabled_pct, 3),
        },
        "bound_pct": {"disabled": OVERHEAD_BOUND_PCT},
        "instrumented_counters_sampled": {
            name: counters[name] for name in sorted(counters)[:8]
        },
    })

    assert overhead_disabled_pct <= OVERHEAD_BOUND_PCT, (
        f"disabled-mode observability overhead {overhead_disabled_pct:.2f}% "
        f"exceeds the {OVERHEAD_BOUND_PCT}% acceptance bound "
        f"(stubbed {timings['stubbed']:.4f}s vs disabled "
        f"{timings['disabled']:.4f}s)"
    )
