"""Benchmark-harness hooks: print the regenerated paper series after the
test run (outside pytest's output capture)."""

import _report


def pytest_terminal_summary(terminalreporter):
    if not _report.EMITTED:
        return
    terminalreporter.section("regenerated paper series (see also benchmarks/results/)")
    for experiment, text in _report.EMITTED:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {experiment} " + "=" * max(0, 60 - len(experiment)))
        for line in text.splitlines():
            terminalreporter.write_line(line)
