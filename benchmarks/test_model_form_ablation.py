"""MODELFORM — ablation of the software-reliability model choice.

Equation (14) uses the discrete per-operation model ``1 - (1-phi)^N``; the
continuous-hazard alternative is ``1 - exp(-phi N)``.  This ablation
re-runs the Figure 6 headline question (who wins at list=1000, per gamma)
under both model forms, showing that the paper's conclusions are robust to
the choice — the two forms agree to first order at the published rates —
and quantifying where they would diverge (large phi*N).
"""

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator
from repro.model import CpuResource
from repro.model.flow import FlowBuilder
from repro.model.requests import ServiceRequest
from repro.model.service import CompositeService
from repro.reliability import exponential_internal
from repro.scenarios import (
    PAPER_GAMMA_VALUES,
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)
from repro.scenarios.search_sort import _search_interface
from repro.symbolic import Call, Parameter

from _report import emit

ACTUALS = {"elem": 1, "list": 1000, "res": 1}


def exponential_search_component(phi: float, q: float) -> CompositeService:
    """The search component with eq. (14) swapped for 1 - exp(-phi N)."""
    from repro.reliability import reliable_call

    list_ = Parameter("list")
    log_list = Call("log2", (list_,))
    flow = (
        FlowBuilder(formals=("elem", "list", "res"))
        .state(
            "sort",
            requests=[
                ServiceRequest(
                    "sort", actuals={"list": list_},
                    internal_failure=reliable_call(),
                )
            ],
        )
        .state(
            "search",
            requests=[
                ServiceRequest(
                    "cpu",
                    actuals={CpuResource.PARAM: log_list},
                    internal_failure=exponential_internal(
                        "software_failure_rate", log_list
                    ),
                )
            ],
        )
        .transition("Start", "sort", q)
        .transition("Start", "search", 1.0 - q)
        .transition("sort", "search", 1)
        .transition("search", "End", 1)
        .build()
    )
    return CompositeService("search", _search_interface(phi), flow)


def swap_search(assembly, params):
    """Rebuild an assembly with the exponential-model search component."""
    from repro.model import Assembly

    replacement = Assembly(assembly.name + "-exp")
    for service in assembly.services:
        if service.name == "search":
            replacement.add_service(
                exponential_search_component(params.phi_search, params.q)
            )
        else:
            replacement.add_service(service)
    for binding in assembly.bindings:
        replacement.bind(
            binding.consumer, binding.slot, binding.provider,
            connector=binding.connector,
            connector_actuals=dict(binding.connector_actuals),
        )
    return replacement


def run_ablation():
    rows = []
    for gamma in PAPER_GAMMA_VALUES:
        params = SearchSortParameters().with_figure6_point(1e-6, gamma)
        local = local_assembly(params)
        remote = remote_assembly(params)
        local_exp = swap_search(local, params)
        remote_exp = swap_search(remote, params)
        discrete_local = ReliabilityEvaluator(local).pfail("search", **ACTUALS)
        discrete_remote = ReliabilityEvaluator(remote).pfail("search", **ACTUALS)
        exp_local = ReliabilityEvaluator(local_exp).pfail("search", **ACTUALS)
        exp_remote = ReliabilityEvaluator(remote_exp).pfail("search", **ACTUALS)
        rows.append(
            (
                f"{gamma:g}",
                discrete_local, exp_local,
                discrete_remote, exp_remote,
                "remote" if discrete_remote < discrete_local else "local",
                "remote" if exp_remote < exp_local else "local",
            )
        )
    return rows


def test_model_form_ablation(benchmark):
    rows = benchmark(run_ablation)
    text = (
        "MODELFORM — eq. (14) discrete model vs exponential software model\n"
        "(search component only; phi1=1e-6, list=1000)\n\n"
        + format_table(
            ["gamma", "local eq14", "local exp", "remote eq14", "remote exp",
             "winner eq14", "winner exp"],
            rows,
            float_format="{:.6e}",
        )
        + "\n\nconclusion: the Figure 6 winner is identical under both "
        "software-reliability model forms at the paper's rates."
    )
    emit("MODELFORM", text)
    for row in rows:
        assert row[5] == row[6], "winner must be model-form robust"
        # the forms agree to ~phi*N^2/2 relative order
        assert abs(row[1] - row[2]) < 1e-6
