"""ANDSHARE / ORSHARE — the sharing-dependency ablation (section 3.2).

Regenerates the paper's two analytic findings as measured series over the
replicated-database scenario, sweeping the replica count:

- **ORSHARE**: under OR completion, n independent replicas drive
  unreliability down geometrically, while n requests sharing one database
  *increase* unreliability with n (each request is one more exposure of
  the shared service) — eq. (12) vs eq. (7) at assembly scale;
- **ANDSHARE**: under AND completion the shared and independent
  configurations coincide exactly — the eq. (11) == eq. (6) identity.

The benchmark measures the full two-sided sweep.
"""

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator
from repro.model import AND, OR
from repro.scenarios import DatabaseParameters, replicated_assembly

from _report import emit

REPLICAS = range(2, 9)
SIZE = 500
PARAMS = DatabaseParameters(db_failure_rate=1e-3, phi_report=1e-6)


def sweep(completion):
    rows = []
    for n in REPLICAS:
        shared = ReliabilityEvaluator(
            replicated_assembly(n, shared=True, params=PARAMS, completion=completion)
        ).pfail("report", size=SIZE)
        independent = ReliabilityEvaluator(
            replicated_assembly(n, shared=False, params=PARAMS, completion=completion)
        ).pfail("report", size=SIZE)
        rows.append((n, independent, shared, shared - independent))
    return rows


def test_or_sharing_ablation(benchmark):
    rows = benchmark(sweep, OR)
    text = (
        "ORSHARE — OR completion: independent replicas vs one shared "
        f"database (size={SIZE})\n\n"
        + format_table(
            ["replicas", "Pfail independent (eq.7)", "Pfail shared (eq.12)",
             "sharing penalty"],
            rows,
            float_format="{:.6e}",
        )
    )
    emit("ORSHARE", text)

    penalties = [penalty for _, _, _, penalty in rows]
    independents = [independent for _, independent, _, _ in rows]
    shareds = [shared for _, _, shared, _ in rows]
    assert all(p > 0 for p in penalties), "sharing must hurt under OR"
    # independent redundancy improves with n; shared redundancy degrades
    assert independents == sorted(independents, reverse=True)
    assert shareds == sorted(shareds)


def test_and_sharing_identity(benchmark):
    rows = benchmark(sweep, AND)
    text = (
        "ANDSHARE — AND completion: the sharing-insensitivity identity "
        f"(size={SIZE})\n\n"
        + format_table(
            ["replicas", "Pfail independent (eq.6)", "Pfail shared (eq.11)",
             "difference"],
            rows,
            float_format="{:.6e}",
        )
    )
    emit("ANDSHARE", text)
    for _, independent, shared, _ in rows:
        assert abs(shared - independent) < 1e-12
