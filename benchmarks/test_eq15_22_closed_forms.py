"""EQ15-22 — the section 4 closed forms, three ways.

Regenerates Pfail for every service of the section 4 example (the paper's
equations 15-22) at representative workloads through three independent
routes — the hand-transcribed printed formulas, the numeric Markov engine,
and the mechanically derived symbolic closed forms — and reports the
maximum disagreement.  Benchmarks compare the per-point cost of the two
library routes (the numeric-vs-symbolic ablation of DESIGN.md §5).
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator, SymbolicEvaluator
from repro.scenarios import SearchSortParameters, local_assembly, remote_assembly
from repro.scenarios.search_sort_closed_forms import (
    pfail_search_local,
    pfail_search_remote,
)

from _report import emit

LIST_SIZES = np.array([1.0, 10.0, 50.0, 200.0, 600.0, 1000.0])


def test_numeric_engine(benchmark):
    params = SearchSortParameters()
    evaluator = ReliabilityEvaluator(remote_assembly(params), check_domains=False)

    def numeric_route():
        evaluator.clear_cache()
        return [
            evaluator.pfail("search", elem=1, list=float(n), res=1)
            for n in LIST_SIZES
        ]

    values = benchmark(numeric_route)
    paper = pfail_search_remote(LIST_SIZES, params)
    assert np.allclose(values, paper, rtol=1e-9, atol=1e-14)


def test_symbolic_engine(benchmark):
    params = SearchSortParameters()
    local = local_assembly(params)
    remote = remote_assembly(params)

    def symbolic_route():
        # derivation + vectorized evaluation, per assembly
        local_expr = SymbolicEvaluator(local).pfail_expression("search")
        remote_expr = SymbolicEvaluator(remote).pfail_expression("search")
        env = {"elem": 1.0, "list": LIST_SIZES, "res": 1.0}
        return local_expr.evaluate(env), remote_expr.evaluate(env)

    local_values, remote_values = benchmark(symbolic_route)

    paper_local = pfail_search_local(LIST_SIZES, params)
    paper_remote = pfail_search_remote(LIST_SIZES, params)
    numeric_local = ReliabilityEvaluator(local_assembly(params))
    numeric_remote = ReliabilityEvaluator(remote_assembly(params))

    rows = []
    worst = 0.0
    for i, n in enumerate(LIST_SIZES):
        nl = numeric_local.pfail("search", elem=1, list=float(n), res=1)
        nr = numeric_remote.pfail("search", elem=1, list=float(n), res=1)
        rows.append(
            (int(n), float(paper_local[i]), nl, float(local_values[i]),
             float(paper_remote[i]), nr, float(remote_values[i]))
        )
        worst = max(
            worst,
            abs(nl - paper_local[i]), abs(local_values[i] - paper_local[i]),
            abs(nr - paper_remote[i]), abs(remote_values[i] - paper_remote[i]),
        )

    text = (
        "Equations (15)-(22) — Pfail(search) by three independent routes\n"
        "(paper: hand-transcribed eq. 22; numeric: recursive Markov engine;\n"
        " symbolic: mechanically derived closed form)\n\n"
        + format_table(
            ["list", "eq22 local", "num local", "sym local",
             "eq22 remote", "num remote", "sym remote"],
            rows,
            float_format="{:.6e}",
        )
        + f"\n\nmax |disagreement| across all routes/points: {worst:.3e}"
    )
    emit("EQ15_22", text)
    assert worst < 1e-12
