"""PERF — low-rank (SMW) what-if re-evaluation vs full re-factorization.

Issue 8's headline workload: a sensitivity sweep on the 5000-state cyclic
flow perturbs a handful of rows of ``Q`` per point, so the PR 4 path pays a
full sparse-LU re-factorization for every point while the incremental path
(:mod:`repro.markov.updates`) serves each point with a rank-``k``
Sherman-Morrison-Woodbury correction against the cached base factorization.

- **headline**: >= 5x total-sweep speedup over the warm-plan re-factoring
  baseline at n=5000, with **zero accuracy drift** (max relative Pfail
  error <= 1e-10 across the sweep), recorded in
  ``benchmarks/results/BENCH_lowrank.json`` together with the
  ``solver.updates.*`` counter deltas;
- **smoke** (the CI job): the same sweep at n=800 must hold exact parity
  and take the update path on every point — no timing gate, so the job is
  immune to noisy shared runners.

The flow must be *cyclic* (back edges) so ``auto`` resolves to ``sparse-lu``
and the baseline really re-factors; on a DAG the triangular fast path has
no factorization to skip and the comparison would be vacuous.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_lowrank.py``.
"""

import time

import numpy as np
import pytest

from repro.markov import solvers, updates
from repro.markov.solvers import chain_plan, factorize_chain

from _report import emit_json

pytestmark = pytest.mark.skipif(
    not solvers.scipy_available(), reason="incremental path requires scipy"
)


def cyclic_flow_matrix(n: int, seed: int = 0, fan_out: int = 4,
                       back_every: int = 5) -> np.ndarray:
    """An n-transient-state sparse flow whose transient graph has cycles:
    every ``back_every``-th state routes one edge *backwards* (a retry /
    compensation loop), which forces the LU backend and gives the baseline
    a genuine factorization cost to pay per sweep point."""
    rng = np.random.default_rng(seed)
    size = n + 2  # + End, Fail
    matrix = np.zeros((size, size))
    rows = np.repeat(np.arange(n), fan_out)
    offsets = rng.integers(1, 80, size=rows.size)
    back = (rows % back_every == 0) & (rows > 80)
    offsets = np.where(back, -rng.integers(1, 60, size=rows.size), offsets)
    cols = np.clip(rows + offsets, 0, n)  # overflow feeds End
    np.add.at(matrix, (rows, cols), rng.uniform(0.1, 1.0, rows.size))
    matrix[np.arange(n), n] += rng.uniform(0.05, 0.3, size=n)
    matrix[np.arange(n), n + 1] += rng.uniform(0.0, 0.1, size=n)
    matrix[:n] /= matrix[:n].sum(axis=1, keepdims=True)
    matrix[n, n] = 1.0
    matrix[n + 1, n + 1] = 1.0
    return matrix


def _sweep_factors(points: int) -> list[float]:
    """Perturbation scales around 1.0, excluding 1.0 itself (a rank-0
    delta is served straight from the cached base, which is reuse — not
    the update path this benchmark times)."""
    return [f for f in np.linspace(0.8, 1.2, points + 1)
            if abs(f - 1.0) > 1e-9]


def _run_sweep(n: int, points: int, perturbed_rows: int = 3) -> dict:
    """Time one sensitivity sweep both ways on the same perturbed systems.

    Memory discipline: ONE base matrix plus ONE working copy (at n=5000
    each is ~200 MB); every sweep point rewrites only the perturbed rows
    in place. The perturbation scales the transient mass of the selected
    rows and moves the remainder to the End column, preserving both row
    normalization and the sparsity pattern (so the structural plan — and
    with it the cached base factorization — stays valid).
    """
    base = cyclic_flow_matrix(n)
    mask = np.zeros(n + 2, dtype=bool)
    mask[n:] = True
    rows = np.linspace(0, n - 1, perturbed_rows + 2)[1:-1].astype(int)
    rhs = base[:n, n + 1]  # transient -> Fail column: x[s0] = Pfail(s0)

    work = base.copy()

    def set_rows(factor: float) -> None:
        work[rows] = base[rows]
        transient_mass = work[rows, :n].sum(axis=1)
        work[rows, :n] *= factor
        work[rows, n] += (1.0 - factor) * transient_mass

    # separate plans so the two paths never share a factorization slot
    plan_full = chain_plan(base, mask, solver="auto", cache=False)
    plan_incr = chain_plan(base, mask, solver="auto", cache=False)
    assert plan_full.backend == "sparse-lu", (
        f"flow must be cyclic enough to force LU, got {plan_full.backend}"
    )

    # warm both paths outside the timers: the incremental one pins its
    # base-factorization slot, the full one pays any first-touch cost
    counts_before = updates.update_counts()
    factorize_chain(base, plan_incr, incremental=True)
    factorize_chain(base, plan_full)

    full_seconds, update_seconds = [], []
    worst_rel_error = 0.0
    for factor in _sweep_factors(points):
        set_rows(factor)

        start = time.perf_counter()
        updated = factorize_chain(work, plan_incr, incremental=True)
        pfail_update = updated.solve(rhs)[0]
        update_seconds.append(time.perf_counter() - start)

        start = time.perf_counter()
        refactored = factorize_chain(work, plan_full)
        pfail_full = refactored.solve(rhs)[0]
        full_seconds.append(time.perf_counter() - start)

        assert updated.method.endswith("+smw"), (
            f"point factor={factor:.3f} fell off the update path: "
            f"{updated.method}"
        )
        worst_rel_error = max(
            worst_rel_error, abs(pfail_update - pfail_full) / abs(pfail_full)
        )

    counts_after = updates.update_counts()
    applied = counts_after["applied"] - counts_before["applied"]
    return {
        "states": n,
        "points": len(full_seconds),
        "perturbed_rows": int(rows.size),
        "rank_crossover": updates.rank_crossover(n),
        "backend": plan_full.backend,
        "full_refactor_seconds": sum(full_seconds),
        "update_seconds": sum(update_seconds),
        "speedup": sum(full_seconds) / sum(update_seconds),
        "max_rel_error": worst_rel_error,
        "updates_applied": applied,
        "fallback_rank": (counts_after["fallback_rank"]
                          - counts_before["fallback_rank"]),
        "fallback_condition": (counts_after["fallback_condition"]
                               - counts_before["fallback_condition"]),
    }


def test_lowrank_sweep_speedup():
    """The headline gate: >= 5x over per-point re-factoring at n=5000 with
    zero accuracy drift, committed to BENCH_lowrank.json."""
    record = _run_sweep(n=5000, points=10)
    emit_json(
        "lowrank",
        {
            "experiment": "rank-3 sensitivity sweep on the 5000-state "
                          "cyclic flow: SMW update of the cached base "
                          "factorization vs full sparse-LU re-factor per "
                          "point (both on a warm structural plan)",
            "acceptance": "speedup >= 5x at 5000 states; max relative "
                          "Pfail error <= 1e-10; every timed point "
                          "served by the update path (applied == points)",
            "sweep": record,
        },
    )
    assert record["speedup"] >= 5.0, (
        f"low-rank update speedup was only {record['speedup']:.1f}x"
    )
    assert record["max_rel_error"] <= 1e-10, (
        f"accuracy drift: max rel error {record['max_rel_error']:.3e}"
    )
    assert record["updates_applied"] == record["points"]


def test_lowrank_parity_smoke():
    """CI gate: at n=800 every sweep point must take the update path and
    match the full re-factorization exactly — parity only, no timing
    assertion, so shared-runner noise cannot flake the job."""
    record = _run_sweep(n=800, points=6)
    assert record["updates_applied"] == record["points"]
    assert record["fallback_rank"] == 0
    assert record["fallback_condition"] == 0
    assert record["max_rel_error"] <= 1e-10
