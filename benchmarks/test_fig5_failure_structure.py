"""FIG5 — failure-structure augmentation of the search flow (Figure 5).

Regenerates the augmented Markov chain of the search service (states,
reweighted transitions, the new Fail edges) at a concrete design point and
benchmarks the augmentation + absorption solve — the inner loop of
``Pfail_Alg``.
"""

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator, augment_with_failures
from repro.core.state_failure import state_failure_probability
from repro.markov import AbsorbingChainAnalysis
from repro.scenarios import local_assembly

from _report import emit

ACTUALS = {"elem": 1, "list": 200, "res": 1}


def test_figure5_augmentation(benchmark):
    assembly = local_assembly()
    search = assembly.service("search")
    evaluator = ReliabilityEvaluator(assembly)
    per_state = evaluator.state_probabilities("search", **ACTUALS)
    env = search.evaluation_environment(ACTUALS)
    failures = {
        name: state_failure_probability(
            search.flow.state(name).completion,
            search.flow.state(name).shared,
            list(internal), list(external),
        )
        for name, (internal, external) in per_state.items()
    }

    def augment_and_solve():
        chain = augment_with_failures(search.flow, env, failures)
        analysis = AbsorbingChainAnalysis(chain)
        return chain, 1.0 - analysis.absorption_probability("Start", "End")

    chain, pfail = benchmark(augment_and_solve)

    edges = []
    for source in chain.states:
        for target, probability in sorted(chain.successors(source).items()):
            edges.append((str(source), str(target), probability))
    text = (
        "Figure 5 — search flow augmented with the failure structure "
        f"(elem=1, list=200, res=1)\n\n"
        + format_table(["from", "to", "probability"], edges, "{:.10f}")
        + f"\n\nPfail(search) from the augmented chain: {pfail:.6e}"
    )
    emit("FIG5", text)

    assert set(chain.states) == {"Start", "sort", "search", "End", "Fail"}
    assert chain.probability("Start", "Fail") == 0.0  # no failure in Start
    assert pfail == evaluator.pfail("search", **ACTUALS)
