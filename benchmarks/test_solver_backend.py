"""PERF — sparse solver backend vs dense on large synthetic flows.

The ROADMAP's production-scale target is flows far beyond the paper's
hand-sized examples: thousands of states where each state calls a handful
of services (``nnz(Q) << n^2``).  This benchmark measures the solver layer
(:mod:`repro.markov.solvers`) on exactly that shape:

- **headline**: a 5000-state sparse synthetic flow solved through the
  dense path vs the sparse path — the acceptance gate is a >= 5x speedup,
  recorded (with a 10^3..10^4 scaling table) in
  ``benchmarks/results/BENCH_solver.json``;
- **reuse**: re-solving structurally identical chains with different rates
  must hit the structural plan cache and — on the triangular DAG fast
  path — perform **zero** numeric re-factorizations (asserted through the
  module's monotone counters);
- **smoke** (the CI job): at n=2000 the sparse path must already be no
  slower than the dense one.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_solver_backend.py``.
"""

import time

import numpy as np
import pytest

from repro.caching import LRUCache
from repro.markov import AbsorbingChainAnalysis, DiscreteTimeMarkovChain
from repro.markov import solvers

from _report import emit_json

pytestmark = pytest.mark.skipif(
    not solvers.scipy_available(), reason="sparse backend requires scipy"
)


def sparse_flow(n: int, seed: int = 0, fan_out: int = 3,
                rates_seed: int | None = None) -> DiscreteTimeMarkovChain:
    """A synthetic n-transient-state sparse flow (forward edges only, so
    the transient graph is a DAG — the composed-usage-profile shape).

    ``rates_seed`` redraws the transition *values* on the same structural
    pattern, which is what a parameter sweep does to a flow.
    """
    rng = np.random.default_rng(seed)
    size = n + 2  # + End, Fail
    matrix = np.zeros((size, size))
    rows = np.repeat(np.arange(n), fan_out)
    cols = rows + rng.integers(1, 50, size=rows.size)
    cols = np.where(cols >= n, n, cols)  # overflow feeds End
    value_rng = rng if rates_seed is None else np.random.default_rng(rates_seed)
    np.add.at(matrix, (rows, cols), value_rng.uniform(0.1, 1.0, rows.size))
    matrix[np.arange(n), n] += value_rng.uniform(0.05, 0.3, size=n)
    matrix[np.arange(n), n + 1] += value_rng.uniform(0.0, 0.1, size=n)
    matrix[:n] /= matrix[:n].sum(axis=1, keepdims=True)
    matrix[n, n] = 1.0
    matrix[n + 1, n + 1] = 1.0
    states = [f"s{i}" for i in range(n)] + ["End", "Fail"]
    return DiscreteTimeMarkovChain(states, matrix)


def _auto_backend(chain) -> str:
    """The backend ``solver="auto"`` resolves to for this chain — from the
    structural plan alone, no numeric solve spent on the label."""
    mask = np.zeros(len(chain.states), dtype=bool)
    mask[[chain.index(s) for s in chain.absorbing_states()]] = True
    return solvers.chain_plan(
        chain.matrix, mask, solver="auto", cache=False
    ).backend


def _solve_time(chain, solver: str, repeats: int = 1) -> tuple[float, float]:
    """(best wall time, Pfail from s0) for a full analysis + absorption."""
    best, pfail = float("inf"), float("nan")
    for _ in range(repeats):
        start = time.perf_counter()
        analysis = AbsorbingChainAnalysis(chain, solver=solver,
                                          solver_cache=False)
        pfail = analysis.absorption_probability("s0", "Fail")
        best = min(best, time.perf_counter() - start)
    return best, pfail


def test_sparse_speedup_and_scaling():
    """The headline gate: >= 5x over dense at n=5000, plus the scaling
    table committed to BENCH_solver.json."""
    table = []
    speedup_at_5000 = None
    for n in (1000, 2000, 5000, 10_000):
        chain = sparse_flow(n)
        sparse_t, sparse_p = _solve_time(chain, "sparse", repeats=3)
        if n <= 5000:
            dense_t, dense_p = _solve_time(chain, "dense")
            assert sparse_p == pytest.approx(dense_p, abs=1e-9)
            speedup = dense_t / sparse_t
            if n == 5000:
                speedup_at_5000 = speedup
        else:
            dense_t, speedup = None, None  # dense deliberately not run
        table.append(
            {
                "states": n,
                # what production (solver="auto") would actually pick at
                # this size — NOT the forced backends being timed
                "backend": _auto_backend(chain),
                "sparse_backend": AbsorbingChainAnalysis(
                    chain, solver="sparse", solver_cache=False
                ).solver_backend,
                "dense_seconds": dense_t,
                "sparse_seconds": sparse_t,
                "speedup": speedup,
                "pfail_s0": sparse_p,
            }
        )

    reuse = _plan_reuse_record()
    emit_json(
        "solver",
        {
            "experiment": "sparse vs dense absorbing solve, synthetic "
                          "sparse flows (fan-out 3, DAG transient graph)",
            "acceptance": "speedup >= 5x at 5000 states; unchanged "
                          "structural fingerprint re-solves perform zero "
                          "re-factorizations",
            "scaling": table,
            "plan_reuse": reuse,
        },
    )
    assert speedup_at_5000 is not None and speedup_at_5000 >= 5.0, (
        f"sparse speedup at 5000 states was only {speedup_at_5000:.1f}x"
    )
    assert reuse["factorizations"] == 0
    assert reuse["plans_built"] == 1


def _plan_reuse_record(n: int = 1500, points: int = 20) -> dict:
    """Sweep-shaped reuse: same structure, varying rates.

    Every point after the first must hit the structural plan cache, and on
    the DAG fast path no point ever performs a numeric factorization.
    """
    cache = LRUCache(max_size=16)
    chains = [
        sparse_flow(n, rates_seed=1000 + k) for k in range(points)
    ]
    solvers.reset_counters()
    fingerprints = set()
    for chain in chains:
        analysis = AbsorbingChainAnalysis(
            chain, solver="sparse", solver_cache=cache
        )
        assert analysis.solver_backend == "sparse-tri"
        fingerprints.add(analysis.structural_fingerprint)
    assert len(fingerprints) == 1  # rates changed, structure did not
    return {
        "points": points,
        "states": n,
        "plans_built": solvers.plan_count(),
        "factorizations": solvers.factorization_count(),
        "cache_hits": cache.stats.hits,
        "cache_misses": cache.stats.misses,
    }


def test_refactorization_skipped_on_unchanged_fingerprint():
    record = _plan_reuse_record(n=600, points=10)
    assert record["plans_built"] == 1
    assert record["factorizations"] == 0  # triangular path: nothing to factor
    assert record["cache_hits"] == record["points"] - 1


def test_sparse_not_slower_smoke():
    """CI gate: at n=2000 the sparse path must beat the dense one."""
    chain = sparse_flow(2000)
    sparse_t, sparse_p = _solve_time(chain, "sparse", repeats=3)
    dense_t, dense_p = _solve_time(chain, "dense")
    assert sparse_p == pytest.approx(dense_p, abs=1e-9)
    assert sparse_t <= dense_t, (
        f"sparse ({sparse_t:.3f}s) slower than dense ({dense_t:.3f}s) "
        f"at 2000 states"
    )
