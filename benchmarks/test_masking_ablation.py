"""MASKING — ablation of the error-propagation (fail-stop) assumption.

Section 6 of the paper: "the fail-stop assumption ... should be released
to deal also with error propagation aspects".  This ablation quantifies
what releasing it buys: in the shared-database OR scenario (where eq. 12
shows sharing destroys redundancy), sweep the caller-side error-masking
probability ``m`` from 0 (the paper's fail-stop semantics) to 1 and report
how much of the lost redundancy masking recovers.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ReliabilityEvaluator
from repro.model import (
    OR,
    AnalyticInterface,
    Assembly,
    CompositeService,
    FlowBuilder,
    FormalParameter,
    IntegerDomain,
    ServiceRequest,
    perfect_connector,
)
from repro.scenarios import DatabaseParameters, replicated_assembly
from repro.scenarios.shared_db import _database_service
from repro.reliability import per_operation_internal
from repro.symbolic import Constant, Parameter

from _report import emit

PARAMS = DatabaseParameters(db_failure_rate=1e-3, phi_report=1e-6)
SIZE = 500
MASKINGS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def masked_shared_assembly(masking: float) -> Assembly:
    """The shared-db scenario with caller-side masking on each query."""
    size = Parameter("size")
    rows = Constant(PARAMS.query_selectivity) * size
    requests = [
        ServiceRequest(
            "db",
            actuals={"rows": rows},
            internal_failure=per_operation_internal("software_failure_rate", rows),
            masking=Constant(masking),
        )
        for _ in range(3)
    ]
    flow = (
        FlowBuilder(formals=("size",))
        .state("query", requests=requests, completion=OR, shared=True)
        .sequence("query")
        .build()
    )
    interface = AnalyticInterface(
        formal_parameters=(FormalParameter("size", domain=IntegerDomain(low=0)),),
        attributes={"software_failure_rate": PARAMS.phi_report},
    )
    assembly = Assembly(f"shared-db-masked-{masking:g}")
    assembly.add_services(
        CompositeService("report", interface, flow),
        _database_service("db", PARAMS),
        perfect_connector("loc_db"),
    )
    assembly.bind("report", "db", "db", connector="loc_db")
    return assembly


def run_sweep():
    independent = ReliabilityEvaluator(
        replicated_assembly(3, shared=False, params=PARAMS)
    ).pfail("report", size=SIZE)
    rows = []
    for masking in MASKINGS:
        shared = ReliabilityEvaluator(masked_shared_assembly(masking)).pfail(
            "report", size=SIZE
        )
        gap = shared - independent
        rows.append((masking, shared, gap))
    return independent, rows


def test_masking_ablation(benchmark):
    independent, rows = benchmark(run_sweep)

    baseline_gap = rows[0][2]
    table = [
        (m, shared, gap, 1.0 - gap / baseline_gap if baseline_gap > 0 else 0.0)
        for m, shared, gap in rows
    ]
    text = (
        "MASKING — releasing fail-stop: caller-side error masking in the "
        f"shared-db OR scenario (size={SIZE})\n"
        f"independent-replica reference Pfail: {independent:.6e}\n\n"
        + format_table(
            ["masking m", "Pfail shared+masked", "gap vs independent",
             "fraction of sharing loss recovered"],
            table,
            float_format="{:.6e}",
        )
    )
    emit("MASKING", text)

    pfails = [shared for _, shared, _ in rows]
    assert pfails == sorted(pfails, reverse=True)  # masking monotone helps
    assert rows[0][1] > independent                # m=0: the eq. 12 penalty
    assert rows[-1][1] <= independent + 1e-15      # m=1: total masking
