"""PERF — the batch-evaluation engine: plan caching and worker fan-out.

Two claims of the engine layer are measured on a Figure-6-style workload
(the local and remote configurations swept over the ``list`` grid):

- **cold vs warm cache**: a cold engine compiles one plan per distinct
  (model, service) target on every pass; a warm one compiles nothing.
  Both the plan compilations and the underlying symbolic derivations are
  counted, and the cold/warm ratio is recorded (the unit tests assert the
  >= 5x bound; here the workload is bigger, so the ratio is larger).
- **sequential vs parallel**: the same sweep grid at ``jobs=1`` and
  ``jobs=2``, plus a two-model batch both ways.  Wall-clock numbers are
  recorded as measured along with ``cpu_count`` — on a single-core runner
  the parallel path cannot win and the JSON says so honestly.

Everything lands in machine-readable form in
``benchmarks/results/BENCH_engine.json`` (see docs/performance_guide.md
for how to read it) next to the usual text table.
"""

import os
import time

import numpy as np

from repro.analysis import format_table, sweep_parameter
from repro.engine import BatchEngine, PlanCache, compilation_count
from repro.scenarios import local_assembly, remote_assembly

from _report import emit, emit_json

#: The Figure 6 x-axis and fixed actuals (benchmarks/test_fig6_*).
GRID = np.linspace(1.0, 1000.0, 60)
FIXED = {"elem": 1.0, "res": 1.0}


def _points(grid):
    return [{**FIXED, "list": float(v)} for v in grid]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _cache_section(assemblies):
    """Cold vs warm: same two-model batch, fresh cache vs reused cache."""
    points = _points(GRID)

    def run_batch(engine):
        for assembly in assemblies:
            result = engine.evaluate(assembly, "search", points)
            assert result.ok
        return result

    cold_engine = BatchEngine(jobs=1, cache=False)  # every pass recompiles
    before = compilation_count()
    _, cold_once = _timed(lambda: run_batch(cold_engine))
    passes = 5
    for _ in range(passes - 1):
        run_batch(cold_engine)
    cold_compilations = compilation_count() - before

    warm_engine = BatchEngine(jobs=1, cache=PlanCache())
    run_batch(warm_engine)  # populate
    before = compilation_count()
    _, warm_once = _timed(lambda: run_batch(warm_engine))
    for _ in range(passes - 1):
        run_batch(warm_engine)
    warm_compilations = compilation_count() - before

    return {
        "passes": passes,
        "entries_per_pass": len(points) * len(assemblies),
        "cold_compilations": cold_compilations,
        "warm_compilations": warm_compilations,
        # warm is usually 0; divide by at least 1 to keep strict JSON
        "compilation_ratio": cold_compilations / max(warm_compilations, 1),
        "cold_pass_seconds": cold_once,
        "warm_pass_seconds": warm_once,
    }


def _parallel_section(assemblies):
    """The same grid sequentially and with two workers, timed honestly."""
    out = {"cpu_count": os.cpu_count()}

    sweep_seconds = {}
    for jobs in (1, 2):
        def run_sweeps(jobs=jobs):
            for assembly in assemblies:
                sweep_parameter(
                    assembly, "search", "list", GRID, FIXED,
                    method="numeric", jobs=jobs,
                )
        _, seconds = _timed(run_sweeps)
        sweep_seconds[f"jobs{jobs}"] = seconds
    out["numeric_sweep_seconds"] = sweep_seconds
    out["sweep_speedup"] = sweep_seconds["jobs1"] / sweep_seconds["jobs2"]

    points = _points(GRID)
    batch_seconds = {}
    for jobs in (1, 2):
        engine = BatchEngine(jobs=jobs, cache=PlanCache())
        def run_batch(engine=engine):
            for assembly in assemblies:
                assert engine.evaluate(assembly, "search", points).ok
        run_batch()  # warm the plan cache so only evaluation is timed
        _, seconds = _timed(run_batch)
        batch_seconds[f"jobs{jobs}"] = seconds
    out["warm_batch_seconds"] = batch_seconds
    out["batch_speedup"] = batch_seconds["jobs1"] / batch_seconds["jobs2"]
    return out


def test_engine_batch(benchmark):
    assemblies = (local_assembly(), remote_assembly())
    warm = BatchEngine(jobs=1, cache=PlanCache())
    points = _points(GRID)
    warm.evaluate(assemblies[0], "search", points)
    benchmark(lambda: warm.evaluate(assemblies[0], "search", points))

    cache = _cache_section(assemblies)
    parallel = _parallel_section(assemblies)
    payload = {
        "workload": {
            "models": [a.name for a in assemblies],
            "service": "search",
            "parameter": "list",
            "grid_points": len(GRID),
            "fixed": FIXED,
        },
        "cache": cache,
        "parallel": parallel,
    }
    emit_json("engine", payload)

    rows = [
        ("cold pass (no cache)", cache["cold_pass_seconds"] * 1e3,
         cache["cold_compilations"]),
        ("warm pass (plan cache)", cache["warm_pass_seconds"] * 1e3,
         cache["warm_compilations"]),
    ]
    text = (
        "PERF/engine — batch evaluation, cold vs warm plan cache "
        f"({cache['passes']} passes x {cache['entries_per_pass']} entries)\n\n"
        + format_table(
            ["pass", "ms", "plan compilations"], rows, float_format="{:.4g}"
        )
        + "\n\nnumeric sweep: "
        f"jobs=1 {parallel['numeric_sweep_seconds']['jobs1']:.3f}s, "
        f"jobs=2 {parallel['numeric_sweep_seconds']['jobs2']:.3f}s "
        f"(speedup {parallel['sweep_speedup']:.2f}x on "
        f"{parallel['cpu_count']} core(s))"
    )
    emit("PERF_ENGINE", text)

    # A warm cache recompiles nothing; cold pays one compilation per
    # (model, service) target per pass.
    assert cache["warm_compilations"] == 0
    assert cache["cold_compilations"] == cache["passes"] * len(assemblies)
