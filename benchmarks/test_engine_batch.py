"""PERF — the batch-evaluation engine: plan caching and worker fan-out.

Four claims of the engine layer are measured on a Figure-6-style workload
(the local and remote configurations swept over the ``list`` grid):

- **cold vs warm cache**: a cold engine compiles one plan per distinct
  (model, service) target on every pass; a warm one compiles nothing.
  Both the plan compilations and the underlying symbolic derivations are
  counted, and the cold/warm ratio is recorded (the unit tests assert the
  >= 5x bound; here the workload is bigger, so the ratio is larger).
- **sequential vs parallel**: the same sweep grid at ``jobs=1`` and
  ``jobs=2``, plus a two-model batch both ways.  Wall-clock numbers are
  recorded as measured along with ``cpu_count`` — on a single-core runner
  the parallel path cannot win, the JSON marks the section ``advisory``,
  and the speedup assertions are skipped rather than asserted against
  contention noise.
- **fused stack vs per-point loop** (``-k fused``): the same
  (models × points) workload through one ``pfail_stack`` kernel call per
  model vs today's python loop over ``plan.pfail`` — bitwise-equal
  results, >= 10x per point.
- **shared-memory transport** for the sparse-solver batch workload
  (``recursive_assembly``, robust backend): ``jobs=2`` must win >= 1.5x
  over ``jobs=1`` — asserted only on runners with >= 2 CPUs.

Everything lands in machine-readable form in
``benchmarks/results/BENCH_engine.json`` (see docs/performance_guide.md
for how to read it) next to the usual text table.
"""

import json
import os
import time

import numpy as np

from repro.analysis import format_table, sweep_parameter
from repro.engine import BatchEngine, PlanCache, compilation_count
from repro.engine.plan import compile_plan
from repro.scenarios import local_assembly, recursive_assembly, remote_assembly
from repro.symbolic import compile_expression

from _report import RESULTS_DIR, emit, emit_json

#: The Figure 6 x-axis and fixed actuals (benchmarks/test_fig6_*).
GRID = np.linspace(1.0, 1000.0, 60)
FIXED = {"elem": 1.0, "res": 1.0}

#: The kernel benchmark sweeps a denser Figure 6 grid (the acceptance
#: workload: >= 200 points) so per-point costs dominate fixed overhead.
KERNEL_GRID = np.linspace(1.0, 1000.0, 240)


def _points(grid):
    return [{**FIXED, "list": float(v)} for v in grid]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _cache_section(assemblies):
    """Cold vs warm: same two-model batch, fresh cache vs reused cache."""
    points = _points(GRID)

    def run_batch(engine):
        for assembly in assemblies:
            result = engine.evaluate(assembly, "search", points)
            assert result.ok
        return result

    cold_engine = BatchEngine(jobs=1, cache=False)  # every pass recompiles
    before = compilation_count()
    _, cold_once = _timed(lambda: run_batch(cold_engine))
    passes = 5
    for _ in range(passes - 1):
        run_batch(cold_engine)
    cold_compilations = compilation_count() - before

    warm_engine = BatchEngine(jobs=1, cache=PlanCache())
    run_batch(warm_engine)  # populate
    before = compilation_count()
    _, warm_once = _timed(lambda: run_batch(warm_engine))
    for _ in range(passes - 1):
        run_batch(warm_engine)
    warm_compilations = compilation_count() - before

    return {
        "passes": passes,
        "entries_per_pass": len(points) * len(assemblies),
        "cold_compilations": cold_compilations,
        "warm_compilations": warm_compilations,
        # warm is usually 0; divide by at least 1 to keep strict JSON
        "compilation_ratio": cold_compilations / max(warm_compilations, 1),
        "cold_pass_seconds": cold_once,
        "warm_pass_seconds": warm_once,
    }


def _merge_engine_json(key, section):
    """Fold one section into ``BENCH_engine.json`` without clobbering the
    sections other tests in this file wrote (the fused tests are
    selectable via ``-k fused``, so any subset of them may run)."""
    path = RESULTS_DIR / "BENCH_engine.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload[key] = section
    emit_json("engine", payload)


def _parallel_section(assemblies):
    """The same grid sequentially and with two workers, timed honestly."""
    cpu_count = os.cpu_count() or 1
    # below two cores the "parallel" numbers measure contention, not
    # fan-out — record them, but flag the section so nobody reads the
    # sub-1x ratios as an engine property (and no assertion fires)
    out = {"cpu_count": cpu_count, "advisory": cpu_count < 2}

    sweep_seconds = {}
    for jobs in (1, 2):
        def run_sweeps(jobs=jobs):
            for assembly in assemblies:
                sweep_parameter(
                    assembly, "search", "list", GRID, FIXED,
                    method="numeric", jobs=jobs,
                )
        _, seconds = _timed(run_sweeps)
        sweep_seconds[f"jobs{jobs}"] = seconds
    out["numeric_sweep_seconds"] = sweep_seconds
    out["sweep_speedup"] = sweep_seconds["jobs1"] / sweep_seconds["jobs2"]

    points = _points(GRID)
    batch_seconds = {}
    for jobs in (1, 2):
        engine = BatchEngine(jobs=jobs, cache=PlanCache())
        def run_batch(engine=engine):
            for assembly in assemblies:
                assert engine.evaluate(assembly, "search", points).ok
        run_batch()  # warm the plan cache so only evaluation is timed
        _, seconds = _timed(run_batch)
        batch_seconds[f"jobs{jobs}"] = seconds
    out["warm_batch_seconds"] = batch_seconds
    out["batch_speedup"] = batch_seconds["jobs1"] / batch_seconds["jobs2"]
    return out


def test_engine_batch(benchmark):
    assemblies = (local_assembly(), remote_assembly())
    warm = BatchEngine(jobs=1, cache=PlanCache())
    points = _points(GRID)
    warm.evaluate(assemblies[0], "search", points)
    benchmark(lambda: warm.evaluate(assemblies[0], "search", points))

    cache = _cache_section(assemblies)
    parallel = _parallel_section(assemblies)
    for key, section in (
        ("workload", {
            "models": [a.name for a in assemblies],
            "service": "search",
            "parameter": "list",
            "grid_points": len(GRID),
            "fixed": FIXED,
        }),
        ("cache", cache),
        ("parallel", parallel),
    ):
        _merge_engine_json(key, section)

    rows = [
        ("cold pass (no cache)", cache["cold_pass_seconds"] * 1e3,
         cache["cold_compilations"]),
        ("warm pass (plan cache)", cache["warm_pass_seconds"] * 1e3,
         cache["warm_compilations"]),
    ]
    text = (
        "PERF/engine — batch evaluation, cold vs warm plan cache "
        f"({cache['passes']} passes x {cache['entries_per_pass']} entries)\n\n"
        + format_table(
            ["pass", "ms", "plan compilations"], rows, float_format="{:.4g}"
        )
        + "\n\nnumeric sweep: "
        f"jobs=1 {parallel['numeric_sweep_seconds']['jobs1']:.3f}s, "
        f"jobs=2 {parallel['numeric_sweep_seconds']['jobs2']:.3f}s "
        f"(speedup {parallel['sweep_speedup']:.2f}x on "
        f"{parallel['cpu_count']} core(s))"
    )
    emit("PERF_ENGINE", text)

    # A warm cache recompiles nothing; cold pays one compilation per
    # (model, service) target per pass.
    assert cache["warm_compilations"] == 0
    assert cache["cold_compilations"] == cache["passes"] * len(assemblies)
    if not parallel["advisory"]:
        # with real cores available, fan-out must at least break even
        assert parallel["sweep_speedup"] >= 1.0, parallel
        assert parallel["batch_speedup"] >= 1.0, parallel


def _interleaved_best(contenders, repeats=100, rounds=5):
    """Best per-call seconds for each contender, measured in interleaved
    rounds (A/B/A/B...) so load drift on a busy runner hits every
    contender equally instead of biasing whichever ran last."""
    best = {name: float("inf") for name, _fn in contenders}
    for _ in range(rounds):
        for name, fn in contenders:
            start = time.perf_counter()
            for _ in range(repeats):
                fn()
            per_call = (time.perf_counter() - start) / repeats
            best[name] = min(best[name], per_call)
    return best


def test_kernel_compilation():
    """PERF — compiled kernels vs the recursive tree walk (no fixtures, so
    the CI smoke job can run it with plain pytest via ``-k kernel``)."""
    sections = {}
    speedups = {}
    for assembly in (local_assembly(), remote_assembly()):
        plan = compile_plan(assembly, "search")
        expression, kernel = plan.expression, plan.kernel()
        env = {**FIXED, "list": KERNEL_GRID}
        # equivalence on the benchmark workload itself, bit for bit
        tree_value = np.broadcast_to(
            np.asarray(expression.evaluate(env), dtype=float),
            KERNEL_GRID.shape,
        )
        kernel_value = np.broadcast_to(
            np.asarray(kernel.evaluate(env), dtype=float), KERNEL_GRID.shape
        )
        assert np.array_equal(tree_value, kernel_value)

        best = _interleaved_best(
            [
                ("tree_walk", lambda: expression.evaluate(env)),
                ("compiled", lambda: kernel.evaluate(env)),
            ]
        )
        speedup = best["tree_walk"] / best["compiled"]
        speedups[assembly.name] = speedup
        sections[assembly.name] = {
            "grid_points": len(KERNEL_GRID),
            "tree_walk_ns_per_point": best["tree_walk"] / len(KERNEL_GRID) * 1e9,
            "compiled_ns_per_point": best["compiled"] / len(KERNEL_GRID) * 1e9,
            "speedup": speedup,
            "tree_nodes": kernel.tree_nodes,
            "dag_nodes": kernel.dag_nodes,
            "executed_ops": kernel.op_count,
            "folded_constants": kernel.folded,
        }

    # CSE on the eq. 18 closed form: composition by substitution repeats
    # N = list*log2(list), so the executed tape must be smaller than the tree
    from repro.core.symbolic_evaluator import SymbolicEvaluator

    sort_expression = SymbolicEvaluator(local_assembly()).pfail_expression(
        "sort1"
    )
    sort_kernel = compile_expression(sort_expression, cache=False)
    cse = {
        "tree_nodes": sort_kernel.tree_nodes,
        "dag_nodes": sort_kernel.dag_nodes,
        "executed_ops": sort_kernel.op_count,
        "reduction": 1.0 - sort_kernel.op_count / sort_kernel.tree_nodes,
    }

    payload = {
        "workload": {
            "service": "search",
            "parameter": "list",
            "grid_points": len(KERNEL_GRID),
            "fixed": FIXED,
        },
        "assemblies": sections,
        "cse_eq18": cse,
    }
    emit_json("kernel", payload)

    rows = [
        (name, s["tree_walk_ns_per_point"], s["compiled_ns_per_point"],
         s["speedup"], s["tree_nodes"], s["executed_ops"])
        for name, s in sections.items()
    ]
    emit(
        "PERF_KERNEL",
        "PERF/kernel — compiled kernels vs tree walk "
        f"(Figure 6 sweep, {len(KERNEL_GRID)} points)\n\n"
        + format_table(
            ["model", "tree ns/pt", "kernel ns/pt", "speedup",
             "tree nodes", "ops"],
            rows,
            float_format="{:.4g}",
        ),
    )

    # the PR's acceptance bar: >= 3x on the Figure 6 sweep workload, and
    # CSE strictly reduces executed ops vs raw tree node count
    for name, speedup in speedups.items():
        assert speedup >= 3.0, f"{name}: {speedup:.2f}x < 3x"
    assert cse["executed_ops"] < cse["tree_nodes"]


def test_fused_stack():
    """PERF — one ``pfail_stack`` kernel call vs the per-point python loop
    on the (models x points) Figure 6 workload, bitwise-equal results.

    Fixture-free on purpose: the ``fused-bench-smoke`` CI job runs it with
    plain ``pytest -k fused``.
    """
    sections = {}
    for assembly in (local_assembly(), remote_assembly()):
        plan = compile_plan(assembly, "search")
        points = _points(KERNEL_GRID)

        def loop(plan=plan, points=points):
            return [plan.pfail(point) for point in points]

        def stacked(plan=plan, points=points):
            return plan.pfail_stack(points)

        # the acceptance contract: bit for bit, not approximately
        assert np.array_equal(np.asarray(loop(), dtype=float), stacked())

        best = _interleaved_best(
            [("loop", loop), ("stacked", stacked)], repeats=3, rounds=5
        )
        speedup = best["loop"] / best["stacked"]
        sections[assembly.name] = {
            "points": len(points),
            "loop_us_per_point": best["loop"] / len(points) * 1e6,
            "stacked_us_per_point": best["stacked"] / len(points) * 1e6,
            "speedup": speedup,
        }

    _merge_engine_json("fused_stack", sections)
    rows = [
        (name, s["loop_us_per_point"], s["stacked_us_per_point"],
         s["speedup"])
        for name, s in sections.items()
    ]
    emit(
        "PERF_FUSED",
        "PERF/fused — pfail_stack vs per-point loop "
        f"(Figure 6 models x {len(KERNEL_GRID)} points)\n\n"
        + format_table(
            ["model", "loop us/pt", "stacked us/pt", "speedup"],
            rows, float_format="{:.4g}",
        ),
    )

    # the PR's acceptance bar: >= 10x per point over the loop
    for name, section in sections.items():
        assert section["speedup"] >= 10.0, (
            f"{name}: {section['speedup']:.2f}x < 10x"
        )


def test_fused_shm_batch():
    """PERF — the shared-memory transport on the sparse-solver batch
    workload (robust backend, per-row solves dominate): jobs=2 vs jobs=1.

    The >= 1.5x bar is asserted only on runners with >= 2 CPUs; below
    that the engine clamps jobs to 1 and the section is advisory.
    """
    from repro.engine import shm

    cpu_count = os.cpu_count() or 1
    assembly = recursive_assembly()
    points = [{"size": float(1 + (i % 8))} for i in range(32)]

    rows_before = shm.shm_counts()["rows"]
    seconds = {}
    for jobs in (1, 2):
        engine = BatchEngine(
            jobs=jobs, cache=PlanCache(), solver="sparse", mode="process"
        )
        assert engine.evaluate(assembly, "A", points[:2]).ok  # warm plan
        result, elapsed = _timed(
            lambda engine=engine: engine.evaluate(assembly, "A", points)
        )
        assert result.ok
        seconds[f"jobs{jobs}"] = elapsed
    shm_rows = shm.shm_counts()["rows"] - rows_before

    section = {
        "cpu_count": cpu_count,
        "advisory": cpu_count < 2,
        "entries": len(points),
        "solver": "sparse",
        "shm_rows": shm_rows,
        "batch_seconds": seconds,
        "speedup": seconds["jobs1"] / seconds["jobs2"],
    }
    _merge_engine_json("fused_shm_batch", section)
    emit(
        "PERF_SHM",
        "PERF/shm — sparse-solver batch via shared-memory transport: "
        f"jobs=1 {seconds['jobs1']:.3f}s, jobs=2 {seconds['jobs2']:.3f}s "
        f"(speedup {section['speedup']:.2f}x, {shm_rows} shm rows, "
        f"{cpu_count} core(s))",
    )

    if not section["advisory"]:
        assert shm_rows >= len(points), section  # transport actually used
        assert section["speedup"] >= 1.5, section
