"""FIG1 — the search and sort usage-profile flows (Figure 1).

Regenerates the two flow diagrams as their textual renderings and
benchmarks model construction (the cost of instantiating analytic
interfaces, which a SOC broker pays per discovered candidate).
"""

from repro.scenarios import build_search_component, build_sort_component

from _report import emit


def build_models():
    search = build_search_component(phi=1e-6, q=0.9)
    sort1 = build_sort_component("sort1", phi=1e-6)
    sort2 = build_sort_component("sort2", phi=1e-7)
    return search, sort1, sort2


def test_figure1_flows(benchmark):
    search, sort1, sort2 = benchmark(build_models)

    text = (
        "Figure 1 — flows of the search and sort services\n\n"
        f"Search (in:elem, in:list, out:res):\n{search.flow.describe()}\n\n"
        f"Sort1 (in-out:list):\n{sort1.flow.describe()}\n\n"
        f"Sort2 (in-out:list):\n{sort2.flow.describe()}"
    )
    emit("FIG1", text)

    # structural assertions pinning the Figure 1 shape
    assert [s.name for s in search.flow.states] == ["sort", "search"]
    assert search.flow.request_targets() == {"sort", "cpu"}
    assert [s.name for s in sort1.flow.states] == ["work"]
    assert sort1.flow.request_targets() == {"cpu"}
