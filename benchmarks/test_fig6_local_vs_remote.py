"""FIG6 — the paper's headline experiment (Figure 6).

Regenerates the reliability-vs-list-size comparison of the local (solid)
and remote (dashed) assemblies for phi1 in {1e-6, 5e-6} and gamma in
{1e-1, 5e-2, 2.5e-2, 5e-3}; reports each curve pair, the winner at the top
of the range, and the crossover location where the ranking flips — the
quantities the paper's closing discussion reads off the figure.

The benchmark measures the cost of producing one full Figure 6 grid (8
curve pairs x 60 points) via the symbolic back-end — the "automatic and
efficient" pathway the paper calls for.
"""

import numpy as np

from repro.analysis import compare_assemblies, format_table, sparkline
from repro.scenarios import (
    PAPER_GAMMA_VALUES,
    PAPER_PHI1_VALUES,
    SearchSortParameters,
    local_assembly,
    remote_assembly,
)

from _report import emit

GRID = np.linspace(1, 1000, 60)
FIXED = {"elem": 1, "res": 1}


def figure6_grid():
    """All 8 curve-pair comparisons of Figure 6."""
    out = {}
    for phi1 in PAPER_PHI1_VALUES:
        for gamma in PAPER_GAMMA_VALUES:
            params = SearchSortParameters().with_figure6_point(phi1, gamma)
            out[(phi1, gamma)] = compare_assemblies(
                local_assembly(params), remote_assembly(params),
                "search", "list", GRID, FIXED, refine_crossovers=True,
            )
    return out


def test_figure6(benchmark):
    comparisons = benchmark(figure6_grid)

    rows = []
    curve_lines = []
    for (phi1, gamma), comparison in sorted(comparisons.items()):
        local_curve = comparison.sweep_a.reliability
        remote_curve = comparison.sweep_b.reliability
        winner_end = comparison.winner_at(1000.0)
        crossover = (
            f"{comparison.crossovers[0].location:.1f}"
            if comparison.crossovers else "-"
        )
        rows.append(
            (
                f"{phi1:g}", f"{gamma:g}",
                float(local_curve[-1]), float(remote_curve[-1]),
                winner_end, crossover,
            )
        )
        curve_lines.append(
            f"phi1={phi1:g} gamma={gamma:g}\n"
            f"  local  (solid) : {sparkline(local_curve)}  "
            f"R(1)={local_curve[0]:.6f} R(1000)={local_curve[-1]:.6f}\n"
            f"  remote (dashed): {sparkline(remote_curve)}  "
            f"R(1)={remote_curve[0]:.6f} R(1000)={remote_curve[-1]:.6f}"
        )

    table = format_table(
        ["phi1", "gamma", "R_local(1000)", "R_remote(1000)", "winner@1000",
         "crossover@list"],
        rows,
        float_format="{:.6f}",
    )
    winners_low = {
        g: comparisons[(1e-6, g)].winner_at(1000.0) for g in PAPER_GAMMA_VALUES
    }
    winners_high = {
        g: comparisons[(5e-6, g)].winner_at(1000.0) for g in PAPER_GAMMA_VALUES
    }
    claim1 = (
        winners_low[5e-3] == "remote"
        and all(winners_low[g] == "local" for g in (2.5e-2, 5e-2, 1e-1))
    )
    claim3 = (
        winners_high[5e-3] == "remote"
        and winners_high[2.5e-2] == "remote"
        and all(winners_high[g] == "local" for g in (5e-2, 1e-1))
    )
    paper_claims = (
        "paper claims checked at list=1000:\n"
        f"  [phi1=1e-6] remote wins only at gamma=5e-3 ............ {claim1}\n"
        f"  [phi1=5e-6] remote wins for 5e-3 <= gamma < 5e-2 ...... {claim3}"
    )

    emit(
        "FIG6",
        "Figure 6 — local (solid) vs remote (dashed) assembly reliability "
        "vs list size\n\n" + "\n".join(curve_lines) + "\n\n" + table + "\n\n"
        + paper_claims,
    )
    assert claim1 and claim3
