"""FIX — fixed-point evaluation of recursive assemblies (section 3.3's
stated future work, implemented).

Regenerates the Pfail of the mutually recursive A <-> B pair as a function
of the recursion probability ``r``, next to the exact algebraic solution,
with the Kleene iteration counts; benchmarks one fixed-point solve at the
deepest recursion setting.
"""

from repro.analysis import format_table
from repro.core import FixedPointEvaluator
from repro.scenarios import (
    RecursiveParameters,
    closed_form_pfail,
    recursive_assembly,
)

from _report import emit

RECURSION_PROBABILITIES = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99)


def solve(r: float):
    params = RecursiveParameters(recursion_probability=r)
    evaluator = FixedPointEvaluator(recursive_assembly(params), tolerance=1e-13)
    value = evaluator.pfail("A", size=1)
    exact, _ = closed_form_pfail(params)
    return value, exact, evaluator.iterations_used


def test_fixed_point_sweep(benchmark):
    benchmark(solve, 0.99)  # the hardest point: slowest contraction

    rows = []
    worst = 0.0
    for r in RECURSION_PROBABILITIES:
        value, exact, iterations = solve(r)
        rows.append((r, value, exact, abs(value - exact), iterations))
        worst = max(worst, abs(value - exact))
    text = (
        "FIX — Pfail(A) of the mutually recursive pair vs recursion "
        "probability r\n(Kleene iteration from 0 vs the exact 2x2 linear "
        "solution)\n\n"
        + format_table(
            ["r", "fixed-point Pfail(A)", "exact Pfail(A)", "|error|",
             "sweeps"],
            rows,
            float_format="{:.9e}",
        )
    )
    emit("FIX", text)
    assert worst < 1e-9
    # the iteration count grows with the contraction factor r
    sweeps = [row[4] for row in rows]
    assert sweeps[-1] > sweeps[1]
