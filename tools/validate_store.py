#!/usr/bin/env python
"""Validate a ``repro/workunits/1`` campaign journal (JSONL store).

CI's chaos-smoke job runs a campaign with injected worker faults and
then::

    python tools/validate_store.py /tmp/campaign.jsonl \
        --expect-complete --expect-attempt crashed --expect-attempt timeout

Checks, with stdlib only (runs anywhere the CLI runs):

- the first record is a campaign header with the pinned schema id;
- every record is one-JSON-object-per-line of a known kind
  (``campaign``/``attempt``/``quarantine``/``validation``) with the
  required fields and a legal attempt status — at most ONE torn trailing
  line is tolerated (the record a killed process was writing);
- attempt numbers are positive, elapsed times non-negative, ``done``
  attempts carry a result;
- ``--expect-complete`` requires done + quarantined units to cover the
  header's unit count (the campaign finished);
- ``--expect-attempt STATUS`` requires at least one attempt with that
  status (chaos-smoke's proof the injected fault actually fired);
- ``--expect-no-quarantine`` / ``--expect-no-mismatch`` assert clean
  completion.

Exit status: 0 = valid, 1 = violations (listed on stderr), 2 =
unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "repro/workunits/1"
ATTEMPT_STATUSES = ("done", "failed", "timeout", "crashed", "corrupt")
KINDS = ("campaign", "attempt", "quarantine", "validation")


def validate_lines(lines: list[str]) -> tuple[list[str], dict]:
    """Problems plus a summary dict for a journal's raw lines."""
    problems: list[str] = []
    summary = {
        "header": None,
        "attempts": 0,
        "statuses": {},
        "done_units": set(),
        "quarantined": set(),
        "mismatches": set(),
        "torn": 0,
    }
    records: list[tuple[int, dict]] = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except ValueError:
            summary["torn"] += 1
            if lineno != len(lines):
                problems.append(
                    f"line {lineno}: unparseable record in the middle of "
                    f"the journal (torn lines are only legal at the tail)"
                )
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: record is not a JSON object")
            continue
        records.append((lineno, record))

    for position, (lineno, record) in enumerate(records):
        kind = record.get("kind")
        if kind not in KINDS:
            problems.append(f"line {lineno}: unknown record kind {kind!r}")
            continue
        if kind == "campaign":
            if position != 0:
                problems.append(
                    f"line {lineno}: campaign header must be the first record"
                )
            if record.get("schema") != SCHEMA:
                problems.append(
                    f"line {lineno}: schema {record.get('schema')!r} "
                    f"(expected {SCHEMA!r})"
                )
            if not isinstance(record.get("campaign"), str):
                problems.append(f"line {lineno}: missing campaign fingerprint")
            if not isinstance(record.get("units"), int) or record["units"] < 1:
                problems.append(f"line {lineno}: bad unit count")
            if summary["header"] is None:
                summary["header"] = record
            continue
        if summary["header"] is None:
            problems.append(
                f"line {lineno}: {kind} record before the campaign header"
            )
        unit = record.get("unit")
        if not isinstance(unit, str) or not unit:
            problems.append(f"line {lineno}: {kind} record without a unit id")
            continue
        if kind == "attempt":
            summary["attempts"] += 1
            status = record.get("status")
            if status not in ATTEMPT_STATUSES:
                problems.append(
                    f"line {lineno}: unknown attempt status {status!r}"
                )
                continue
            summary["statuses"][status] = summary["statuses"].get(status, 0) + 1
            attempt = record.get("attempt")
            if not isinstance(attempt, int) or attempt < 1:
                problems.append(f"line {lineno}: bad attempt number {attempt!r}")
            elapsed = record.get("elapsed")
            if not isinstance(elapsed, (int, float)) or elapsed < 0:
                problems.append(f"line {lineno}: bad elapsed {elapsed!r}")
            if status == "done":
                if "result" not in record:
                    problems.append(
                        f"line {lineno}: done attempt without a result payload"
                    )
                summary["done_units"].add(unit)
        elif kind == "quarantine":
            summary["quarantined"].add(unit)
        elif kind == "validation":
            if record.get("match") is False:
                summary["mismatches"].add(unit)
    if summary["header"] is None and records:
        problems.append("journal has no campaign header")
    return problems, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="campaign journal written by --store")
    parser.add_argument(
        "--expect-complete", action="store_true",
        help="require done + quarantined units to cover the campaign",
    )
    parser.add_argument(
        "--expect-attempt", action="append", default=[], metavar="STATUS",
        help="require >=1 attempt with this status (repeatable; proves an "
             "injected fault fired)",
    )
    parser.add_argument(
        "--expect-no-quarantine", action="store_true",
        help="require zero quarantined units",
    )
    parser.add_argument(
        "--expect-no-mismatch", action="store_true",
        help="require zero redundant-validation mismatches",
    )
    args = parser.parse_args(argv)
    try:
        lines = Path(args.file).read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    if not lines:
        print(f"{args.file}: empty journal", file=sys.stderr)
        return 1
    problems, summary = validate_lines(lines)
    header = summary["header"]
    if args.expect_complete and header is not None:
        covered = len(summary["done_units"] | summary["quarantined"])
        if covered < header.get("units", 0):
            problems.append(
                f"campaign incomplete: {covered}/{header.get('units')} "
                f"units accounted for"
            )
    for status in args.expect_attempt:
        if not summary["statuses"].get(status):
            problems.append(f"no attempt with status {status!r} journaled")
    if args.expect_no_quarantine and summary["quarantined"]:
        problems.append(f"{len(summary['quarantined'])} unit(s) quarantined")
    if args.expect_no_mismatch and summary["mismatches"]:
        problems.append(
            f"{len(summary['mismatches'])} validation mismatch(es)"
        )
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        statuses = ", ".join(
            f"{k}={v}" for k, v in sorted(summary["statuses"].items())
        ) or "none"
        print(
            f"{args.file}: valid {SCHEMA} journal — "
            f"{len(summary['done_units'])} done, "
            f"{len(summary['quarantined'])} quarantined, "
            f"{summary['attempts']} attempts ({statuses})"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
