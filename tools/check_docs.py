#!/usr/bin/env python
"""Documentation health check: dead links and broken doctest examples.

Run from the repository root (CI runs it in the ``docs`` job)::

    PYTHONPATH=src python tools/check_docs.py

Two passes over every tracked markdown file:

1. **Link check** — every relative markdown link and every backticked
   repository path (````docs/...` ``, ````src/repro/...` ``, ...) must
   resolve to an existing file.  External ``http(s)`` links are *not*
   fetched (CI must stay hermetic); anchors are stripped before the
   existence test.
2. **Doctest check** — ``>>>`` examples embedded in the guides are run
   with ``doctest`` exactly as ``python -m doctest <file>`` would, so
   the documented numbers can never silently drift from the code.

Exit status is the number of failing files (0 = healthy docs).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# every shipped markdown page; new guides must be added here and to CI
PAGES = [
    "README.md",
    "docs/api_reference.md",
    "docs/architecture.md",
    "docs/modeling_guide.md",
    "docs/observability_guide.md",
    "docs/paper_mapping.md",
    "docs/performance_guide.md",
    "docs/robustness_guide.md",
    "docs/server_guide.md",
]

# guides whose ``>>>`` examples are executable (kept fast on purpose)
DOCTESTED = [
    "docs/architecture.md",
    "docs/observability_guide.md",
    "docs/performance_guide.md",
    "docs/robustness_guide.md",
    "docs/server_guide.md",
]

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
BACKTICK_PATH = re.compile(
    r"`((?:docs|src|tests|benchmarks|examples|tools)/[A-Za-z0-9_/.-]+"
    r"\.(?:md|py|json|txt|yml))`"
)


def check_links(page: Path) -> list[str]:
    """Return a list of human-readable problems for one page."""
    problems = []
    text = page.read_text(encoding="utf-8")
    targets = set(MARKDOWN_LINK.findall(text)) | set(BACKTICK_PATH.findall(text))
    for target in sorted(targets):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (page.parent / target).resolve()
        if not resolved.exists():
            # backticked paths are repo-root relative in our house style
            if (ROOT / target).exists():
                continue
            problems.append(f"{page.relative_to(ROOT)}: dead link -> {target}")
    return problems


def check_doctests(page: Path) -> list[str]:
    failures, tests = doctest.testfile(
        str(page), module_relative=False, verbose=False,
        optionflags=doctest.ELLIPSIS,
    )
    if failures:
        return [f"{page.relative_to(ROOT)}: {failures}/{tests} doctest(s) failed"]
    return []


def main() -> int:
    problems: list[str] = []
    for name in PAGES:
        page = ROOT / name
        if not page.exists():
            problems.append(f"missing page: {name}")
            continue
        problems.extend(check_links(page))
    for name in DOCTESTED:
        problems.extend(check_doctests(ROOT / name))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"docs ok: {len(PAGES)} pages, {len(DOCTESTED)} doctested")
    return min(len(problems), 125)


if __name__ == "__main__":
    sys.exit(main())
