#!/usr/bin/env python
"""Regenerate the pinned golden values under ``tests/regression/goldens/``.

The regression suite (``tests/regression/test_goldens.py``) compares every
evaluation path — symbolic tree walk, compiled kernel, numeric recursion
with the dense and sparse solver backends — against the values pinned
here.  The goldens are the contract that refactors of the evaluation stack
must not move the numbers.

Reference values come from the cheapest *independent* source available:

- Figure 6 and Section 4 cases are pinned to the paper's **closed forms**
  (:mod:`repro.scenarios.search_sort_closed_forms`), so the goldens are
  analytically grounded, not engine echoes;
- scenario-module cases (booking, media pipeline, shared/replicated DB)
  have no closed form, so they pin the symbolic tree-walk result — the
  most direct rendering of the paper's recursive procedure — and guard
  every other path against drift from it.

Run from the repository root::

    python tools/update_goldens.py          # rewrite all golden files
    python tools/update_goldens.py --check  # exit 1 if anything moved

Tolerances are per *case*: symbolic paths reproduce closed forms to
~1e-12; the numeric paths go through absorbing-chain solves and get
1e-9 of relative slack.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

GOLDEN_DIR = REPO_ROOT / "tests" / "regression" / "goldens"
SCHEMA = "repro/goldens/1"

#: Figure 6 sample points: enough of the grid to pin the curve's shape
#: (small/medium/large lists) without a 120-point golden file.
FIGURE6_LISTS = (1.0, 17.0, 123.0, 400.0, 1000.0)
FIGURE6_SETTINGS = tuple(
    (phi1, gamma) for phi1 in (1e-06, 5e-06) for gamma in (0.005, 0.1)
)

#: Section 4 list sizes (mirrors the closed-form integration test).
SECTION4_LISTS = (1.0, 2.0, 5.0, 17.0, 50.0, 123.0, 400.0, 1000.0)


def build_assembly(spec: dict):
    """Build the assembly a case spec names (shared with the tests)."""
    from repro import scenarios

    kind = spec["scenario"]
    if kind in ("local", "remote"):
        params = scenarios.SearchSortParameters()
        if "phi1" in spec:
            params = params.with_figure6_point(spec["phi1"], spec["gamma"])
        builder = (
            scenarios.local_assembly if kind == "local"
            else scenarios.remote_assembly
        )
        return builder(params)
    if kind == "booking":
        return scenarios.booking_assembly(shared_gds=spec.get("shared", False))
    if kind == "pipeline":
        return scenarios.pipeline_assembly()
    if kind == "replicated-db":
        return scenarios.replicated_assembly(
            spec.get("replicas", 3), shared=spec.get("shared", False)
        )
    raise ValueError(f"unknown scenario {kind!r}")


def _closed_form(spec: dict, actuals: dict) -> float:
    from repro.scenarios import SearchSortParameters
    from repro.scenarios.search_sort_closed_forms import (
        pfail_search_local,
        pfail_search_remote,
    )

    params = SearchSortParameters()
    if "phi1" in spec:
        params = params.with_figure6_point(spec["phi1"], spec["gamma"])
    fn = pfail_search_local if spec["scenario"] == "local" else pfail_search_remote
    return float(fn(
        actuals["list"], params, elem=actuals["elem"], res=actuals["res"]
    ))


def _tree_walk(spec: dict, service: str, actuals: dict) -> float:
    from repro.engine.plan import compile_plan

    plan = compile_plan(build_assembly(spec), service, backend="symbolic")
    return float(plan.pfail(actuals, use_kernel=False))


def golden_cases() -> dict[str, dict]:
    """All golden cases, keyed by golden file stem.

    Each case carries the assembly spec, target service, actuals, the
    reference source (``closed-form`` or ``tree-walk``) and per-path
    relative tolerances.  The regression tests iterate exactly this
    structure, so tool and tests can never disagree about what is pinned.
    """
    files: dict[str, dict] = {"figure6": {}, "section4": {}, "scenarios": {}}

    for phi1, gamma in FIGURE6_SETTINGS:
        for list_size in FIGURE6_LISTS:
            for scenario in ("local", "remote"):
                case_id = (
                    f"{scenario}/phi1={phi1:g}/gamma={gamma:g}/list={list_size:g}"
                )
                files["figure6"][case_id] = {
                    "spec": {"scenario": scenario, "phi1": phi1, "gamma": gamma},
                    "service": "search",
                    "actuals": {"list": list_size, "elem": 1.0, "res": 1.0},
                    "reference": "closed-form",
                    "rtol": {"symbolic": 1e-12, "numeric": 1e-09},
                }

    for list_size in SECTION4_LISTS:
        for scenario in ("local", "remote"):
            case_id = f"{scenario}/list={list_size:g}"
            files["section4"][case_id] = {
                "spec": {"scenario": scenario},
                "service": "search",
                "actuals": {"list": list_size, "elem": 1.0, "res": 1.0},
                "reference": "closed-form",
                "rtol": {"symbolic": 1e-12, "numeric": 1e-09},
            }

    scenario_targets = [
        ("booking", {"scenario": "booking"}, "booking", {"itinerary": 1.0}),
        ("booking-shared", {"scenario": "booking", "shared": True},
         "booking", {"itinerary": 1.0}),
        ("pipeline", {"scenario": "pipeline"}, "publish", {"mb": 4.0}),
        ("shared-db", {"scenario": "replicated-db", "shared": True},
         "report", {"size": 2.0}),
        ("replicated-db", {"scenario": "replicated-db", "shared": False},
         "report", {"size": 2.0}),
    ]
    for name, spec, service, actuals in scenario_targets:
        for scale in (1.0, 8.0):
            scaled = {k: v * scale for k, v in actuals.items()}
            point = ",".join(f"{k}={v:g}" for k, v in sorted(scaled.items()))
            files["scenarios"][f"{name}/{point}"] = {
                "spec": spec,
                "service": service,
                "actuals": scaled,
                "reference": "tree-walk",
                "rtol": {"symbolic": 1e-12, "numeric": 1e-09},
            }
    return files


def compute_reference(case: dict) -> float:
    """The pinned value for one case, from its declared reference source."""
    if case["reference"] == "closed-form":
        return _closed_form(case["spec"], case["actuals"])
    return _tree_walk(case["spec"], case["service"], case["actuals"])


def render_golden(cases: dict[str, dict]) -> str:
    """The canonical on-disk JSON for one golden file."""
    document = {
        "schema": SCHEMA,
        "cases": {
            case_id: {**case, "pfail": compute_reference(case)}
            for case_id, case in sorted(cases.items())
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify the files on disk match regenerated content (no writes)",
    )
    args = parser.parse_args(argv)

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    stale = []
    for stem, cases in golden_cases().items():
        path = GOLDEN_DIR / f"{stem}.json"
        content = render_golden(cases)
        if args.check:
            if not path.exists() or path.read_text() != content:
                stale.append(path)
                continue
            print(f"ok: {path.relative_to(REPO_ROOT)} ({len(cases)} cases)")
        else:
            path.write_text(content)
            print(f"wrote {path.relative_to(REPO_ROOT)} ({len(cases)} cases)")
    if stale:
        for path in stale:
            print(f"STALE: {path.relative_to(REPO_ROOT)} — rerun "
                  f"tools/update_goldens.py", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
