#!/usr/bin/env python
"""Validate a ``--metrics json:PATH`` document against the pinned schema.

CI's metrics-smoke job runs an instrumented CLI command and then::

    python tools/validate_metrics.py /tmp/metrics.json \
        --expect-counter cache. --expect-counter solver.

Validation is against ``tools/metrics_schema.json`` via a small built-in
interpreter for the JSON-Schema subset that file uses (``type``,
``required``, ``properties``, ``additionalProperties``, ``const``,
``minimum``) — no third-party dependency, so the check runs anywhere the
CLI runs.  ``--expect-counter PREFIX`` additionally requires at least one
counter whose name starts with ``PREFIX`` and whose value is positive —
the smoke test's proof that worker metrics actually aggregated.

Exit status: 0 = valid, 1 = violations (listed on stderr), 2 = unreadable
input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent / "metrics_schema.json"


def _type_ok(value, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "integer":
        # bool is an int subclass but never a valid metric value
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "string":
        return isinstance(value, str)
    raise ValueError(f"unsupported schema type: {expected}")


def check(value, schema: dict, path: str = "$") -> list[str]:
    """Problems with ``value`` under ``schema`` (the subset we use)."""
    problems: list[str] = []
    if "const" in schema:
        if value != schema["const"]:
            problems.append(
                f"{path}: expected {schema['const']!r}, got {value!r}"
            )
        return problems
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        problems.append(
            f"{path}: expected {expected}, got {type(value).__name__}"
        )
        return problems
    if "minimum" in schema and value < schema["minimum"]:
        problems.append(f"{path}: {value!r} < minimum {schema['minimum']!r}")
    if expected == "object":
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                problems.append(f"{path}: missing required key {name!r}")
        extra = schema.get("additionalProperties")
        for name, item in value.items():
            if name in properties:
                problems.extend(check(item, properties[name], f"{path}.{name}"))
            elif isinstance(extra, dict):
                problems.extend(check(item, extra, f"{path}.{name}"))
            elif extra is False:
                problems.append(f"{path}: unexpected key {name!r}")
    return problems


def validate_document(document, expect_counters=()) -> list[str]:
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    problems = check(document, schema)
    if problems:
        return problems
    counters = document["counters"]
    for prefix in expect_counters:
        if not any(
            name.startswith(prefix) and value > 0
            for name, value in counters.items()
        ):
            problems.append(
                f"$.counters: no positive counter matching prefix {prefix!r}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="metrics JSON written by --metrics json:PATH")
    parser.add_argument(
        "--expect-counter", action="append", default=[], metavar="PREFIX",
        help="require >=1 positive counter whose name starts with PREFIX "
             "(repeatable)",
    )
    args = parser.parse_args(argv)
    try:
        document = json.loads(Path(args.file).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    problems = validate_document(document, args.expect_counter)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        counters = len(document["counters"])
        histograms = len(document["histograms"])
        print(
            f"{args.file}: valid {document['schema']} snapshot "
            f"({counters} counters, {len(document['gauges'])} gauges, "
            f"{histograms} histograms)"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
